package netsim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

// Differential testing of the incremental engine against the reference
// implementation (reference.go): the same seeded scenario — topology,
// flow arrivals, pause/resume/cancel churn, completion-chained flows —
// runs once on each engine, and every observable must match exactly
// (==, not approximately): the engines are required to be
// bit-identical, which is what keeps the experiment goldens stable.

// churnRecord captures every observable of one scenario run.
type churnRecord struct {
	finishTimes []sim.Time // per flow id; -1 if never finished
	finishOrder []uint64   // flow ids in Done-callback order
	rateSamples []float64  // all flows' rates at each probe time
	linkBytes   []float64  // final per-link byte counters
	endTime     sim.Time
}

// churnScenario is the deterministic program derived from a seed. All
// randomness is drawn up front so both engines replay the exact same
// schedule.
type churnScenario struct {
	nNodes    int
	linkSrc   []int
	linkDst   []int
	linkBW    []float64
	linkLat   []float64
	flowRoute [][]int // indices into the link slices
	flowBytes []float64
	flowLat   []float64
	flowStart []sim.Time
	// chained flows started from Done callbacks, consumed in
	// completion order.
	chainRoute [][]int
	chainBytes []float64
	ops        []churnOp
	probes     []sim.Time
}

type churnOp struct {
	at   sim.Time
	kind int // 0 pause, 1 resume, 2 cancel
	flow int // index into the initially started flows
}

// roundOr returns a round value (to provoke exact event-time ties)
// with probability 1/2, otherwise an irrational-ish random one.
func roundOr(rng *rand.Rand, round, scale float64) float64 {
	if rng.Intn(2) == 0 {
		return round * float64(1+rng.Intn(8))
	}
	return scale * (0.1 + rng.Float64())
}

func makeScenario(seed int64) churnScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := churnScenario{nNodes: 3 + rng.Intn(8)}
	nLinks := 4 + rng.Intn(12)
	for i := 0; i < nLinks; i++ {
		bw := roundOr(rng, 100, 1000)
		if rng.Float64() < 0.15 {
			bw = math.Inf(1)
		}
		lat := 0.0
		if rng.Intn(2) == 0 {
			lat = roundOr(rng, 0.5, 0.25)
		}
		sc.linkSrc = append(sc.linkSrc, rng.Intn(sc.nNodes))
		sc.linkDst = append(sc.linkDst, rng.Intn(sc.nNodes))
		sc.linkBW = append(sc.linkBW, bw)
		sc.linkLat = append(sc.linkLat, lat)
	}
	route := func() []int {
		k := 1 + rng.Intn(minInt(4, nLinks))
		perm := rng.Perm(nLinks)
		r := append([]int(nil), perm[:k]...)
		if rng.Intn(3) == 0 { // duplicate a hop: exercises dedup
			r = append(r, r[0])
		}
		return r
	}
	nFlows := 4 + rng.Intn(16)
	for i := 0; i < nFlows; i++ {
		sc.flowRoute = append(sc.flowRoute, route())
		sc.flowBytes = append(sc.flowBytes, roundOr(rng, 100, 5000))
		lat := -1.0
		if rng.Intn(3) == 0 {
			lat = roundOr(rng, 1, 0.5)
		}
		sc.flowLat = append(sc.flowLat, lat)
		sc.flowStart = append(sc.flowStart, sim.Time(rng.Intn(8)))
	}
	nChain := rng.Intn(6)
	for i := 0; i < nChain; i++ {
		sc.chainRoute = append(sc.chainRoute, route())
		sc.chainBytes = append(sc.chainBytes, roundOr(rng, 100, 2000))
	}
	nOps := rng.Intn(16)
	for i := 0; i < nOps; i++ {
		at := sim.Time(rng.Intn(12))
		if rng.Intn(2) == 0 {
			at += sim.Time(rng.Float64())
		}
		sc.ops = append(sc.ops, churnOp{at: at, kind: rng.Intn(3), flow: rng.Intn(nFlows)})
	}
	for i := 0; i < 4; i++ {
		sc.probes = append(sc.probes, sim.Time(i*3)+sim.Time(rng.Intn(2)))
	}
	return sc
}

// run replays the scenario on a fresh network, on the reference engine
// when reference is set, and records all observables.
func (sc churnScenario) run(reference bool) churnRecord {
	return sc.runWith(reference, 1)
}

// runParallel replays on the sharded engine with a width-pool fill
// worker pool.
func (sc churnScenario) runParallel(pool int) churnRecord {
	return sc.runWith(false, pool)
}

func (sc churnScenario) runWith(reference bool, pool int) churnRecord {
	s := sim.NewScheduler()
	net := New(s)
	defer net.Close()
	if reference {
		net.useReferenceEngine()
	}
	if pool > 1 {
		net.SetFillParallel(pool)
	}
	nodes := make([]NodeID, sc.nNodes)
	for i := range nodes {
		nodes[i] = net.AddNode("n")
	}
	links := make([]LinkID, len(sc.linkBW))
	for i := range links {
		links[i] = net.AddLink(nodes[sc.linkSrc[i]], nodes[sc.linkDst[i]], sc.linkBW[i], sc.linkLat[i], "l")
	}
	ids := func(route []int) []LinkID {
		out := make([]LinkID, len(route))
		for i, li := range route {
			out[i] = links[li]
		}
		return out
	}

	totalFlows := len(sc.flowRoute) + len(sc.chainRoute)
	rec := churnRecord{finishTimes: make([]sim.Time, totalFlows)}
	for i := range rec.finishTimes {
		rec.finishTimes[i] = -1
	}
	flows := make([]*Flow, len(sc.flowRoute))
	var allFlows []*Flow
	chained := 0
	var onDone func(f *Flow)
	onDone = func(f *Flow) {
		rec.finishTimes[f.ID()] = s.Now()
		rec.finishOrder = append(rec.finishOrder, f.ID())
		if chained < len(sc.chainRoute) {
			c := chained
			chained++
			nf := net.StartFlow(FlowSpec{
				Links: ids(sc.chainRoute[c]), Bytes: sc.chainBytes[c],
				Latency: -1, Done: onDone, Label: "chain",
			})
			allFlows = append(allFlows, nf)
		}
	}
	for i := range sc.flowRoute {
		i := i
		s.At(sc.flowStart[i], func() {
			flows[i] = net.StartFlow(FlowSpec{
				Links: ids(sc.flowRoute[i]), Bytes: sc.flowBytes[i],
				Latency: sc.flowLat[i], Done: onDone, Label: "init",
			})
			allFlows = append(allFlows, flows[i])
		})
	}
	for _, op := range sc.ops {
		op := op
		s.At(op.at, func() {
			f := flows[op.flow]
			if f == nil {
				return // not started yet at this op's time
			}
			switch op.kind {
			case 0:
				f.Pause()
			case 1:
				f.Resume()
			case 2:
				f.Cancel()
				rec.finishTimes[f.ID()] = f.Finished()
			}
		})
	}
	for _, at := range sc.probes {
		s.At(at, func() {
			for _, f := range allFlows {
				rec.rateSamples = append(rec.rateSamples, f.Rate())
			}
		})
	}
	// A safety horizon: paused flows may never resume; don't run
	// forever on pathological schedules (completion events of active
	// flows all land well before this for the byte/bandwidth ranges
	// drawn above).
	rec.endTime = s.RunUntil(1e6)
	for _, id := range links {
		rec.linkBytes = append(rec.linkBytes, net.Link(id).BytesCarried())
	}
	return rec
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDifferentialEnginesBitIdentical is the tentpole property test:
// 50 seeded random scenarios, each replayed on both engines, every
// observable compared with exact float equality.
func TestDifferentialEnginesBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sc := makeScenario(seed)
		opt := sc.run(false)
		ref := sc.run(true)

		if opt.endTime != ref.endTime {
			t.Errorf("seed %d: end time %v != reference %v", seed, opt.endTime, ref.endTime)
		}
		if len(opt.finishOrder) != len(ref.finishOrder) {
			t.Fatalf("seed %d: %d completions != reference %d",
				seed, len(opt.finishOrder), len(ref.finishOrder))
		}
		for i := range opt.finishOrder {
			if opt.finishOrder[i] != ref.finishOrder[i] {
				t.Fatalf("seed %d: completion order diverges at %d: flow %d != reference flow %d",
					seed, i, opt.finishOrder[i], ref.finishOrder[i])
			}
		}
		for id, ft := range opt.finishTimes {
			if ft != ref.finishTimes[id] {
				t.Errorf("seed %d: flow %d finished at %v != reference %v",
					seed, id, ft, ref.finishTimes[id])
			}
		}
		if len(opt.rateSamples) != len(ref.rateSamples) {
			t.Fatalf("seed %d: %d rate samples != reference %d",
				seed, len(opt.rateSamples), len(ref.rateSamples))
		}
		for i := range opt.rateSamples {
			if opt.rateSamples[i] != ref.rateSamples[i] {
				t.Errorf("seed %d: rate sample %d: %v != reference %v",
					seed, i, opt.rateSamples[i], ref.rateSamples[i])
			}
		}
		for i := range opt.linkBytes {
			if opt.linkBytes[i] != ref.linkBytes[i] {
				t.Errorf("seed %d: link %d carried %v != reference %v",
					seed, i, opt.linkBytes[i], ref.linkBytes[i])
			}
		}
	}
}

// TestDifferentialKeptEventTie engineers the cross-pass tie the random
// scenarios are unlikely to hit: flow B's completion event is already
// scheduled at t=7 when a recompute moves flow A's ETA to a bitwise-
// equal 7. Under the kept-ETA contract (a flow whose rate a recompute
// leaves bitwise-unchanged keeps its armed completion — here B, whose
// domain the t=2 recompute does not even touch), B's event holds the
// older arming pass and fires first; A, re-armed at the later pass,
// fires second. The sharded engine's calendar key (eta, arming pass,
// activation seq) must reproduce exactly the reference's kept-event
// sequence order.
func TestDifferentialKeptEventTie(t *testing.T) {
	run := func(reference bool) []string {
		s := sim.NewScheduler()
		net := New(s)
		if reference {
			net.useReferenceEngine()
		}
		a, b := net.AddNode("a"), net.AddNode("b")
		l1 := net.AddLink(a, b, 2, 0, "l1")
		l2 := net.AddLink(a, b, 1, 0, "l2")
		var order []string
		done := func(name string) func(*Flow) {
			return func(*Flow) { order = append(order, name) }
		}
		// A alone on l1: rate 2, ETA 4.5. B alone on l2: rate 1, ETA 7.
		net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 9, Latency: 0, Done: done("A"), Label: "A"})
		net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 7, Latency: 0, Done: done("B"), Label: "B"})
		// At t=2, C joins l1: A has 5 bytes left and halves to rate 1,
		// so its new ETA is 2+5/1 = 7, bit-equal to B's scheduled event.
		s.At(2, func() {
			net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 100, Latency: 0, Done: done("C"), Label: "C"})
		})
		s.RunUntil(1e6)
		return order
	}
	opt := run(false)
	ref := run(true)
	want := []string{"B", "A", "C"}
	if len(opt) != len(want) || len(ref) != len(want) {
		t.Fatalf("completion counts: optimized %v, reference %v, want %v", opt, ref, want)
	}
	for i := range want {
		if ref[i] != want[i] {
			t.Fatalf("reference finish order %v, want %v", ref, want)
		}
		if opt[i] != ref[i] {
			t.Fatalf("optimized finish order %v diverges from reference %v", opt, ref)
		}
	}
}

// The steady-state recompute — settle, filling pass, completion
// re-timing — must not allocate: scratch lives in links and flows,
// and completion events are moved in place.
func TestRecomputeSteadyStateZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	links := make([]LinkID, 8)
	for i := range links {
		links[i] = net.AddLink(a, b, 100+float64(i), 0, "l")
	}
	for i := 0; i < 32; i++ {
		net.StartFlow(FlowSpec{
			Links: []LinkID{links[i%8], links[(i+3)%8]}, Bytes: 1e12, Latency: 0,
		})
	}
	s.RunUntil(0)
	if net.ActiveFlows() != 32 {
		t.Fatalf("active = %d, want 32", net.ActiveFlows())
	}
	allocs := testing.AllocsPerRun(100, func() {
		net.ForceFullFill() // force the full filling pass
	})
	if allocs != 0 {
		t.Fatalf("steady-state recompute allocates %v objects/op, want 0", allocs)
	}
}
