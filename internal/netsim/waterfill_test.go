package netsim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

// Flows whose every link has infinite bandwidth are contention-free:
// progressive filling must freeze them at an infinite rate upfront
// (completing at pure latency) rather than iterating on them — and a
// mixed population must not let them distort the finite flows' shares.
func TestInfiniteLinkFlowsFreezeAtInf(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	inf1 := net.AddLink(a, b, math.Inf(1), 0, "inf1")
	inf2 := net.AddLink(b, c, math.Inf(1), 0, "inf2")
	fin := net.AddLink(a, c, 100, 0, "fin")

	free1 := net.StartFlow(FlowSpec{Links: []LinkID{inf1, inf2}, Bytes: 1e12, Latency: 0})
	free2 := net.StartFlow(FlowSpec{Links: []LinkID{inf2}, Bytes: 1e12, Latency: 0})
	bound1 := net.StartFlow(FlowSpec{Links: []LinkID{fin}, Bytes: 1e6, Latency: 0})
	bound2 := net.StartFlow(FlowSpec{Links: []LinkID{inf1, fin}, Bytes: 1e6, Latency: 0})

	// The filling pass runs as an event scheduled by the first
	// activation, which fires after this callback; nest one event deeper
	// to sample after it (and still before the instant completions).
	sampled := false
	s.After(0, func() {
		s.After(0, func() {
			sampled = true
			for i, f := range []*Flow{free1, free2} {
				if !math.IsInf(f.Rate(), 1) {
					t.Errorf("contention-free flow %d: rate %g, want +Inf", i, f.Rate())
				}
			}
			for i, f := range []*Flow{bound1, bound2} {
				if !approx(f.Rate(), 50) {
					t.Errorf("finite flow %d: rate %g, want fair share 50", i, f.Rate())
				}
			}
		})
	})
	s.Run()
	if !sampled {
		t.Fatal("sampling callback never ran")
	}
	if free1.State() != FlowDone || free1.Finished() != 0 {
		t.Fatalf("infinite-rate flow should complete instantly: state %v at %g",
			free1.State(), free1.Finished())
	}
}

// The max-min invariants over randomized topologies and flow sets:
// after one filling pass (1) flow conservation — the frozen rates
// crossing any finite link sum to at most its bandwidth plus epsilon —
// and (2) every flow is frozen either at +Inf (all-infinite path) or
// against at least one saturated bottleneck link.
func TestWaterfillInvariantsRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		net := New(s)

		nodes := make([]NodeID, 2+rng.Intn(8))
		for i := range nodes {
			nodes[i] = net.AddNode("n")
		}
		nLinks := 1 + rng.Intn(12)
		links := make([]LinkID, nLinks)
		for i := range links {
			bw := math.Inf(1)
			if rng.Float64() < 0.8 {
				bw = 1 + rng.Float64()*1e3
			}
			links[i] = net.AddLink(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], bw, 0, "l")
		}

		nFlows := 1 + rng.Intn(16)
		flows := make([]*Flow, nFlows)
		for i := range flows {
			// A route of 1-4 distinct random links (progressive filling
			// only sees link sets, not geometric paths).
			perm := rng.Perm(nLinks)
			route := make([]LinkID, 0, 4)
			for _, li := range perm[:1+rng.Intn(min(4, nLinks))] {
				route = append(route, links[li])
			}
			flows[i] = net.StartFlow(FlowSpec{Links: route, Bytes: 1e15, Latency: 0})
		}

		s.After(0, func() {
			s.After(0, sampleInvariants(t, seed, net, links, flows))
		})
		s.Run()
	}
}

// The same invariants must hold on the incremental path: after an
// initial filling pass, churn the active set — cancel a third of the
// flows, add new ones (some contention-free so the filling pass is
// skipped for them) — and re-check on the resulting state, which was
// produced by skip-fill bookkeeping and in-place event re-timing
// rather than a from-scratch engine.
func TestWaterfillInvariantsAfterChurn(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		s := sim.NewScheduler()
		net := New(s)

		nodes := make([]NodeID, 2+rng.Intn(8))
		for i := range nodes {
			nodes[i] = net.AddNode("n")
		}
		nLinks := 2 + rng.Intn(12)
		links := make([]LinkID, nLinks)
		for i := range links {
			bw := math.Inf(1)
			if rng.Float64() < 0.8 {
				bw = 1 + rng.Float64()*1e3
			}
			links[i] = net.AddLink(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], bw, 0, "l")
		}
		route := func() []LinkID {
			perm := rng.Perm(nLinks)
			r := make([]LinkID, 0, 4)
			for _, li := range perm[:1+rng.Intn(min(4, nLinks))] {
				r = append(r, links[li])
			}
			return r
		}

		flows := make([]*Flow, 8+rng.Intn(8))
		for i := range flows {
			flows[i] = net.StartFlow(FlowSpec{Links: route(), Bytes: 1e15, Latency: 0})
		}
		s.RunUntil(0)
		// Churn at t=1: cancel a third, start replacements.
		s.At(1, func() {
			for i, f := range flows {
				if i%3 == 0 {
					f.Cancel()
				}
			}
			for i := 0; i < 4; i++ {
				flows = append(flows, net.StartFlow(FlowSpec{Links: route(), Bytes: 1e15, Latency: 0}))
			}
		})
		s.At(2, func() {
			live := make([]*Flow, 0, len(flows))
			for _, f := range flows {
				if f.State() == FlowActive {
					live = append(live, f)
				}
			}
			s.After(0, sampleInvariants(t, seed, net, links, live))
		})
		s.RunUntil(3)
	}
}

// sampleInvariants returns the event callback checking the max-min
// invariants at the instant after the filling pass.
func sampleInvariants(t *testing.T, seed int64, net *Network, links []LinkID, flows []*Flow) func() {
	return func() {
		// (1) Flow conservation per finite link.
		for _, li := range links {
			l := net.Link(li)
			if math.IsInf(l.Bandwidth, 1) {
				continue
			}
			sum := 0.0
			for _, f := range flows {
				if f.State() != FlowActive {
					continue
				}
				for _, fl := range f.links {
					if fl == l {
						sum += f.Rate()
					}
				}
			}
			if sum > l.Bandwidth*(1+1e-6) {
				t.Errorf("seed %d: link oversubscribed: sum %g > bandwidth %g", seed, sum, l.Bandwidth)
			}
		}
		// (2) Every flow froze: +Inf iff its path is all-infinite,
		// otherwise pinned by a saturated bottleneck.
		for i, f := range flows {
			allInf := true
			for _, fl := range f.links {
				if !math.IsInf(fl.Bandwidth, 1) {
					allInf = false
				}
			}
			if allInf {
				if !math.IsInf(f.Rate(), 1) {
					t.Errorf("seed %d flow %d: all-infinite path but rate %g", seed, i, f.Rate())
				}
				continue
			}
			if f.Rate() <= 0 || math.IsInf(f.Rate(), 1) {
				t.Errorf("seed %d flow %d: unfrozen rate %g", seed, i, f.Rate())
				continue
			}
			bottleneck := false
			for _, fl := range f.links {
				if math.IsInf(fl.Bandwidth, 1) {
					continue
				}
				sum := 0.0
				for _, g := range flows {
					if g.State() != FlowActive {
						continue
					}
					for _, gl := range g.links {
						if gl == fl {
							sum += g.Rate()
						}
					}
				}
				if sum >= fl.Bandwidth*(1-1e-6) {
					bottleneck = true
					break
				}
			}
			if !bottleneck {
				t.Errorf("seed %d flow %d: rate %g has no saturated link on its path", seed, i, f.Rate())
			}
		}
		// End the run: the invariants are about the instantaneous
		// allocation, not the (enormous) transfers.
		for _, f := range flows {
			f.Cancel()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
