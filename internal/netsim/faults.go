package netsim

// Fault layer: links can fail permanently or degrade transiently at
// simulated time, and flows crossing a failing link are torn down and —
// when a Reroute is configured — re-admitted after a bounded
// exponential backoff. Everything here reuses the ordinary flow
// lifecycle (detach/activate/markDirty), so the incremental filling
// engine is untouched: a failed link simply no longer carries flows,
// and a degraded link is just a link whose Bandwidth changed between
// recomputes. Degrade never toggles a link between finite and infinite
// bandwidth, which keeps every flow's precomputed finiteLinks subset
// valid.
//
// Determinism: flows crossing a failing link are collected in
// activation order, and every retry is an ordinary scheduler event, so
// fault handling inherits the (time, insertion-seq) total order of the
// scheduler and stays bit-reproducible.

import (
	"fmt"
	"math"

	"github.com/wafernet/fred/internal/critpath"
	"github.com/wafernet/fred/internal/sim"
	"github.com/wafernet/fred/internal/trace"
)

// RetryPolicy bounds how a flow with a Reroute callback recovers from
// link failures: teardown k (1-based) waits Backoff·2^(k-1) before
// asking Reroute for a fresh route, and after MaxRetries teardowns the
// flow aborts.
type RetryPolicy struct {
	// MaxRetries is the number of link-failure teardowns a flow
	// survives; the teardown after that aborts it. Zero means abort on
	// first failure even with a Reroute configured.
	MaxRetries int
	// Backoff is the wait before the first retry; each subsequent retry
	// doubles it.
	Backoff sim.Time
}

// DefaultRetryPolicy is the policy installed by New: four retries
// starting at 1µs of backoff (a circuit re-establishment time scale,
// comfortably above per-hop link latencies).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Backoff: 1e-6}
}

// SetRetryPolicy replaces the retry policy applied to flows torn down
// by link failures. It affects subsequent teardowns only.
func (n *Network) SetRetryPolicy(p RetryPolicy) {
	if p.MaxRetries < 0 {
		panic(fmt.Sprintf("netsim: negative MaxRetries %d", p.MaxRetries))
	}
	if p.Backoff < 0 {
		panic(fmt.Sprintf("netsim: negative Backoff %g", p.Backoff))
	}
	n.retry = p
}

// RetryPolicy returns the policy applied to flows torn down by link
// failures.
func (n *Network) RetryPolicy() RetryPolicy { return n.retry }

// Failed reports whether the link has permanently failed.
func (l *Link) Failed() bool { return l.failed }

// Fail permanently removes the link from service at the current
// simulated time. Every flow whose route crosses it — active, paused,
// or still in its latency stage — is torn down: flows with a Reroute
// callback enter the retry path (bounded exponential backoff, then
// re-admission on the route Reroute returns), the rest abort. Failing
// an already-failed link is a no-op.
func (l *Link) Fail() {
	if l.failed {
		return
	}
	n := l.net
	n.settle()
	l.failed = true
	n.stateEpoch++
	if n.tracer != nil {
		n.tracer.Instant("link", "fail "+l.Name, n.sched.Now())
	}
	// Collect first, then tear down: flowRouteFailed mutates n.active
	// (detach shifts slots), so the victims are snapshotted into the
	// reused scratch slice. Active flows are collected in activation
	// order — the network's canonical deterministic order — and
	// latency/paused flows are not on any route yet, so they are caught
	// lazily by the failed-link check in activate instead.
	victims := n.failScratch[:0]
	for _, f := range n.active {
		for _, fl := range f.links {
			if fl == l {
				victims = append(victims, f)
				break
			}
		}
	}
	for i, f := range victims {
		n.flowRouteFailed(f)
		victims[i] = nil // drop the reference so the scratch slice doesn't pin flows
	}
	n.failScratch = victims[:0]
	n.markDirty()
}

// Degrade scales the link's bandwidth to factor times its healthy
// value, modelling a transient fault (signal-margin loss, a lane down
// in a bundle, a failed middle µswitch removing 1/m of a FRED bundle).
// factor must be in (0, 1]; Degrade(1) — and Restore — return the link
// to its healthy bandwidth. Successive calls always scale the original
// healthy bandwidth, not each other. Degrading an infinite
// (contention-free) link or a failed link panics: the former would
// invalidate every flow's finite-link subset, the latter is dead.
func (l *Link) Degrade(factor float64) {
	if !(factor > 0 && factor <= 1) {
		panic(fmt.Sprintf("netsim: link %q degrade factor %g outside (0, 1]", l.Name, factor))
	}
	if math.IsInf(l.Bandwidth, 1) {
		panic(fmt.Sprintf("netsim: cannot degrade contention-free link %q", l.Name))
	}
	if l.failed {
		panic(fmt.Sprintf("netsim: cannot degrade failed link %q", l.Name))
	}
	n := l.net
	n.settle()
	n.stateEpoch++
	if l.baseBW == 0 {
		l.baseBW = l.Bandwidth
	}
	l.Bandwidth = l.baseBW * factor
	if n.tracer != nil {
		n.tracer.Instant("link", fmt.Sprintf("degrade %s ×%g", l.Name, factor), n.sched.Now())
	}
	// Only flows in this link's contention domain can see their max-min
	// share move; a link no active route has touched this partition
	// version (root nil) carries no rate and needs no refill at all.
	if r := n.domRootOf(l); r != nil {
		n.markDomainDirty(r)
		n.markDirty()
	}
}

// Restore returns a degraded link to its healthy bandwidth. Restoring a
// never-degraded link is a no-op; restoring a failed link panics
// (failures are permanent).
func (l *Link) Restore() {
	if l.failed {
		panic(fmt.Sprintf("netsim: cannot restore failed link %q", l.Name))
	}
	if l.baseBW == 0 || l.Bandwidth == l.baseBW {
		l.baseBW = 0
		return
	}
	n := l.net
	n.settle()
	n.stateEpoch++
	l.Bandwidth = l.baseBW
	l.baseBW = 0
	if n.tracer != nil {
		n.tracer.Instant("link", "restore "+l.Name, n.sched.Now())
	}
	if r := n.domRootOf(l); r != nil {
		n.markDomainDirty(r)
		n.markDirty()
	}
}

// FailNode fails every link touching the node (as source or
// destination) in link-ID order, modelling an NPU dropout or a µswitch
// failure taking out all its ports. It returns the number of links
// newly failed.
func (n *Network) FailNode(id NodeID) int {
	failed := 0
	for _, l := range n.links {
		if (l.Src == id || l.Dst == id) && !l.failed {
			l.Fail()
			failed++
		}
	}
	return failed
}

// flowRouteFailed tears the flow off its (now partly dead) route and
// either schedules a retry or aborts it, per the network's RetryPolicy.
func (n *Network) flowRouteFailed(f *Flow) {
	switch f.state {
	case FlowActive:
		// settle already ran (Fail settles before collecting victims).
		n.detach(f)
		n.traceStage(f, "active")
		n.markDirty()
	case FlowLatency:
		if f.latEvent != nil {
			n.sched.Cancel(f.latEvent)
			f.latEvent = nil
		}
		n.traceStage(f, "latency")
	default:
		return
	}
	f.rate = 0
	f.retries++
	if n.crit != nil && !f.inFault {
		// Open the fault-recovery window; re-admission (activate) or
		// abort closes it.
		f.inFault = true
		f.faultFrom = n.sched.Now()
	}
	if f.reroute == nil || f.retries > n.retry.MaxRetries {
		n.abortFlow(f)
		return
	}
	// Bounded exponential backoff: 1st teardown waits Backoff, each
	// further teardown doubles it. The reroute callback runs at
	// retry-fire time, so it sees the fault state of that moment, not
	// of the teardown.
	backoff := n.retry.Backoff * float64(int64(1)<<uint(f.retries-1))
	attempt := f.retries
	f.state = FlowLatency
	f.stageStart = n.sched.Now()
	f.latEvent = n.sched.After(backoff, func() {
		f.latEvent = nil
		route, ok := f.reroute(attempt)
		if !ok {
			n.traceStage(f, "backoff")
			n.abortFlow(f)
			return
		}
		if n.mFlowsRerouted != nil {
			n.mFlowsRerouted.Add(1)
		}
		n.traceStage(f, "backoff")
		n.buildRoute(f, route)
		lat := 0.0
		for _, l := range f.links {
			lat += l.Latency
		}
		f.latency = lat
		f.latEvent = n.sched.After(lat, func() {
			f.latEvent = nil
			n.activate(f)
		})
	})
}

// abortFlow marks the flow failed and notifies its OnFail callback. The
// flow keeps its remaining byte count for inspection.
func (n *Network) abortFlow(f *Flow) {
	f.state = FlowFailed
	f.finished = n.sched.Now()
	f.rate = 0
	if n.mFlowsAborted != nil {
		n.mFlowsAborted.Add(1)
	}
	if n.tracer != nil {
		n.tracer.AsyncInstant(n.catFlow, "failed", f.id, f.finished,
			trace.String("label", f.label), trace.Float("remaining", f.remaining))
	}
	if n.crit != nil {
		if f.inFault {
			f.faultTime += f.finished - f.faultFrom
			f.inFault = false
		}
		id := n.crit.Add(critpath.Node{
			Kind:     critpath.KindFlow,
			Label:    f.label,
			Start:    f.started,
			End:      f.finished,
			Blame:    critpath.ClampBlame(f.finished-f.started, f.stall, f.faultTime),
			BindLink: f.BindLinkName(),
			Failed:   true,
		})
		n.crit.Edge(critpath.EdgeExpand, f.critParent, id)
	}
	if f.onFail != nil {
		f.onFail(f)
	}
}
