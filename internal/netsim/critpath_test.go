package netsim

import (
	"math"
	"testing"

	"github.com/wafernet/fred/internal/critpath"
	"github.com/wafernet/fred/internal/sim"
)

// TestCritPathSoloFlowAllSerial: a flow alone on its route runs at its
// solo rate the whole time, so its blame is pure serialized time.
func TestCritPathSoloFlowAllSerial(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	rec := critpath.NewRecorder()
	net.SetCritPath(rec)
	if !s.CausalTracking() {
		t.Fatal("SetCritPath did not enable causal tracking")
	}
	net.StartFlow(FlowSpec{Links: links, Bytes: 200, Latency: -1, Label: "solo"})
	s.Run()
	if rec.NodeCount() != 1 {
		t.Fatalf("nodes = %d, want 1", rec.NodeCount())
	}
	n := rec.Node(1)
	if n.Kind != critpath.KindFlow || n.Label != "solo" || n.Failed {
		t.Fatalf("flow node wrong: %+v", n)
	}
	if !approx(n.Duration(), 2) {
		t.Fatalf("duration = %g, want 2", n.Duration())
	}
	if !approx(n.Blame.Serial, 2) || n.Blame.Contention != 0 || n.Blame.Fault != 0 {
		t.Fatalf("solo blame = %+v, want all serial", n.Blame)
	}
}

// TestCritPathSharedLinkStallExact: two equal flows sharing one link
// each run at half their solo rate for their whole lifetime, so each
// accrues exactly half its elapsed time as contention.
func TestCritPathSharedLinkStallExact(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	rec := critpath.NewRecorder()
	net.SetCritPath(rec)
	fa := net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Label: "a"})
	fb := net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Label: "b"})
	s.Run()
	// Both at rate 50 on a 100 B/s link: finish at t=2, stall = ∫(1 −
	// 50/100)dt over [0,2] = 1 exactly.
	for _, f := range []*Flow{fa, fb} {
		if !approx(f.Finished(), 2) {
			t.Fatalf("%s finished at %g, want 2", f.Label(), f.Finished())
		}
		if got := f.ContentionStall(); math.Abs(got-1) > 1e-12 {
			t.Fatalf("%s stall = %g, want exactly 1", f.Label(), got)
		}
	}
	if rec.NodeCount() != 2 {
		t.Fatalf("nodes = %d, want 2", rec.NodeCount())
	}
	n := rec.Node(1)
	if !approx(n.Blame.Contention, 1) || !approx(n.Blame.Serial, 1) {
		t.Fatalf("shared blame = %+v, want 1s/1s", n.Blame)
	}
	// The shared saturated link is the binding constraint.
	if n.BindLink != "l" {
		t.Fatalf("bind link = %q, want \"l\"", n.BindLink)
	}
	// Blame sums to the node's duration exactly.
	if got := n.Blame.Total(); math.Abs(got-n.Duration()) > 1e-12 {
		t.Fatalf("blame total %g != duration %g", got, n.Duration())
	}
}

// TestCritPathFaultWindow: a rerouted flow's teardown-to-readmission
// gap (backoff; zero route latency here) is charged to fault recovery.
func TestCritPathFaultWindow(t *testing.T) {
	s, net, l1, l2 := twoPath(100, 50)
	rec := critpath.NewRecorder()
	net.SetCritPath(rec)
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return []LinkID{l2}, true },
		Label:   "survivor",
	})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)
	if f.State() != FlowDone {
		t.Fatalf("state = %v, want done", f.State())
	}
	backoff := net.RetryPolicy().Backoff
	if got := f.FaultTime(); math.Abs(got-backoff) > 1e-12 {
		t.Fatalf("fault time = %g, want backoff %g", got, backoff)
	}
	n := rec.Node(1)
	if n.Kind != critpath.KindFlow || n.Failed {
		t.Fatalf("rerouted flow node wrong: %+v", n)
	}
	if math.Abs(n.Blame.Fault-backoff) > 1e-12 {
		t.Fatalf("fault blame = %g, want %g", n.Blame.Fault, backoff)
	}
	if got := n.Blame.Total(); math.Abs(got-n.Duration()) > 1e-9 {
		t.Fatalf("blame total %g != duration %g", got, n.Duration())
	}
}

// TestCritPathAbortedFlowFailedNode: a flow whose reroute declines
// after the backoff is recorded as a Failed node whose fault window
// covers the backoff it waited before giving up.
func TestCritPathAbortedFlowFailedNode(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	rec := critpath.NewRecorder()
	net.SetCritPath(rec)
	net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return nil, false },
		Label:   "victim",
	})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)
	if rec.NodeCount() != 1 {
		t.Fatalf("nodes = %d, want 1", rec.NodeCount())
	}
	n := rec.Node(1)
	if !n.Failed {
		t.Fatalf("aborted flow not marked Failed: %+v", n)
	}
	backoff := net.RetryPolicy().Backoff
	if math.Abs(n.Blame.Fault-backoff) > 1e-12 {
		t.Fatalf("fault blame = %g, want backoff %g", n.Blame.Fault, backoff)
	}
	if got := n.Blame.Total(); math.Abs(got-n.Duration()) > 1e-9 {
		t.Fatalf("blame total %g != duration %g", got, n.Duration())
	}
}

// TestCritPathParentEdge: a flow started with a CritParent gets an
// expand edge from the parent node.
func TestCritPathParentEdge(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	rec := critpath.NewRecorder()
	net.SetCritPath(rec)
	parent := rec.Open(critpath.Node{Kind: critpath.KindOp, Label: "op"})
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Label: "child", CritParent: parent})
	s.Run()
	var found bool
	for _, e := range rec.Edges() {
		if e.Kind == critpath.EdgeExpand && e.From == parent {
			found = true
		}
	}
	if !found {
		t.Fatalf("no expand edge from parent: %+v", rec.Edges())
	}
}

// TestCritPathObserverEffectFree: attaching a recorder must not change
// any simulated outcome — same completion times, same bytes carried.
func TestCritPathObserverEffectFree(t *testing.T) {
	run := func(attach bool) []float64 {
		s := sim.NewScheduler()
		net, links := line(s, 4, 100)
		if attach {
			net.SetCritPath(critpath.NewRecorder())
		}
		var finished []float64
		for i := 0; i < 3; i++ {
			bytes := float64(100 * (i + 1))
			net.StartFlow(FlowSpec{Links: links[i%len(links):], Bytes: bytes, Latency: -1,
				Done: func(f *Flow) { finished = append(finished, f.Finished()) }})
		}
		s.Run()
		return finished
	}
	plain, observed := run(false), run(true)
	if len(plain) != len(observed) {
		t.Fatalf("completion count changed: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("completion %d changed: %g vs %g", i, plain[i], observed[i])
		}
	}
}
