package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/wafernet/fred/internal/sim"
)

const tol = 1e-6

// crossesLink reports whether the flow's deduplicated route contains l.
func crossesLink(f *Flow, l *Link) bool {
	for _, fl := range f.links {
		if fl == l {
			return true
		}
	}
	return false
}

func approx(got, want float64) bool {
	if want == 0 {
		return math.Abs(got) < tol
	}
	return math.Abs(got-want)/math.Abs(want) < tol
}

// line builds a chain of n nodes with links of the given bandwidth and
// zero latency and returns the network and link IDs (i -> i+1).
func line(s *sim.Scheduler, n int, bw float64) (*Network, []LinkID) {
	net := New(s)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = net.AddNode("n")
	}
	links := make([]LinkID, n-1)
	for i := 0; i < n-1; i++ {
		links[i] = net.AddLink(ids[i], ids[i+1], bw, 0, "l")
	}
	return net, links
}

func TestSingleFlowTransferTime(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var done sim.Time = -1
	net.StartFlow(FlowSpec{Links: links, Bytes: 500, Latency: -1, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 5) {
		t.Fatalf("500 bytes at 100 B/s finished at %g, want 5", done)
	}
}

func TestLatencyAddsToCompletion(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 2.0, "lat")
	var done sim.Time = -1
	net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 100, Latency: -1, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 3) {
		t.Fatalf("completion = %g, want latency 2 + transfer 1 = 3", done)
	}
}

func TestExplicitLatencyOverride(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 50.0, "lat")
	var done sim.Time = -1
	net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 100, Latency: 0.5, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 1.5) {
		t.Fatalf("completion = %g, want 0.5 + 1 = 1.5", done)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var t1, t2 sim.Time
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(f *Flow) { t1 = s.Now() }})
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(f *Flow) { t2 = s.Now() }})
	s.Run()
	// Both at 50 B/s until the first finishes; they tie at t=2.
	if !approx(t1, 2) || !approx(t2, 2) {
		t.Fatalf("equal flows finished at %g, %g, want both 2", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var tShort, tLong sim.Time
	net.StartFlow(FlowSpec{Links: links, Bytes: 50, Latency: -1, Done: func(f *Flow) { tShort = s.Now() }})
	net.StartFlow(FlowSpec{Links: links, Bytes: 150, Latency: -1, Done: func(f *Flow) { tLong = s.Now() }})
	s.Run()
	// Share 50/50 until t=1 (short done, 50 bytes each), then the long
	// flow gets 100 B/s for its remaining 100 bytes → t=2.
	if !approx(tShort, 1) {
		t.Fatalf("short flow finished at %g, want 1", tShort)
	}
	if !approx(tLong, 2) {
		t.Fatalf("long flow finished at %g, want 2", tLong)
	}
}

func TestMaxMinUnevenBottlenecks(t *testing.T) {
	// Classic 3-flow max-min example:
	//   link A (cap 100) carries f1, f2
	//   link B (cap 30) carries f2
	// f2 is limited to 30 by B; f1 then gets 70 on A.
	s := sim.NewScheduler()
	net := New(s)
	n0, n1, n2 := net.AddNode("0"), net.AddNode("1"), net.AddNode("2")
	la := net.AddLink(n0, n1, 100, 0, "A")
	lb := net.AddLink(n1, n2, 30, 0, "B")
	f1 := net.StartFlow(FlowSpec{Links: []LinkID{la}, Bytes: 1e9, Latency: -1})
	f2 := net.StartFlow(FlowSpec{Links: []LinkID{la, lb}, Bytes: 1e9, Latency: -1})
	s.RunUntil(0) // process activations + recompute at t=0
	if !approx(f2.Rate(), 30) {
		t.Fatalf("f2 rate = %g, want 30", f2.Rate())
	}
	if !approx(f1.Rate(), 70) {
		t.Fatalf("f1 rate = %g, want 70", f1.Rate())
	}
	f1.Cancel()
	f2.Cancel()
	s.Run()
}

func TestInfiniteBandwidthLinksIgnored(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	l1 := net.AddLink(a, b, math.Inf(1), 0, "inf")
	l2 := net.AddLink(b, c, 100, 0, "cap")
	var done sim.Time
	net.StartFlow(FlowSpec{Links: []LinkID{l1, l2}, Bytes: 200, Latency: -1, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 2) {
		t.Fatalf("completion = %g, want 2 (limited by finite link)", done)
	}
}

func TestFlowOnOnlyInfiniteLinksCompletesImmediately(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, math.Inf(1), 0, "inf")
	var done sim.Time = -1
	net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 1e12, Latency: -1, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if done != 0 {
		t.Fatalf("completion = %g, want 0", done)
	}
}

func TestZeroByteFlowCompletesAfterLatency(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 3, "l")
	var done sim.Time = -1
	net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 0, Latency: -1, Done: func(f *Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 3) {
		t.Fatalf("zero-byte flow completed at %g, want 3", done)
	}
}

func TestMulticastTreeFlowOccupiesAllEdges(t *testing.T) {
	// A broadcast tree with a shared trunk: two trees share the trunk
	// link, so each streams at half the trunk rate.
	s := sim.NewScheduler()
	net := New(s)
	src, mid, d1, d2 := net.AddNode("s"), net.AddNode("m"), net.AddNode("d1"), net.AddNode("d2")
	trunk := net.AddLink(src, mid, 100, 0, "trunk")
	b1 := net.AddLink(mid, d1, 1000, 0, "b1")
	b2 := net.AddLink(mid, d2, 1000, 0, "b2")
	var t1, t2 sim.Time
	net.StartFlow(FlowSpec{Links: []LinkID{trunk, b1, b2}, Bytes: 100, Latency: -1, Done: func(f *Flow) { t1 = s.Now() }})
	net.StartFlow(FlowSpec{Links: []LinkID{trunk, b1, b2}, Bytes: 100, Latency: -1, Done: func(f *Flow) { t2 = s.Now() }})
	s.Run()
	if !approx(t1, 2) || !approx(t2, 2) {
		t.Fatalf("tree flows finished at %g, %g, want 2, 2", t1, t2)
	}
}

func TestPauseAndResume(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var done sim.Time = -1
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 200, Latency: -1, Done: func(fl *Flow) { done = s.Now() }})
	s.At(1, func() {
		f.Pause()
		if f.State() != FlowPaused {
			t.Errorf("state after Pause = %v", f.State())
		}
		if !approx(f.Remaining(), 100) {
			t.Errorf("remaining after 1s = %g, want 100", f.Remaining())
		}
	})
	s.At(4, func() { f.Resume() })
	s.Run()
	// 1s transfer + 3s paused + 1s remaining transfer = done at 5.
	if !approx(done, 5) {
		t.Fatalf("paused flow completed at %g, want 5", done)
	}
}

func TestPauseFreesBandwidthForOthers(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var otherDone sim.Time
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 1000, Latency: -1})
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(fl *Flow) { otherDone = s.Now() }})
	s.At(0.5, func() { f.Pause() })
	s.Run()
	// Share 50/50 for 0.5s (other has 75 left), then full rate: done at
	// 0.5 + 0.75 = 1.25.
	if !approx(otherDone, 1.25) {
		t.Fatalf("other flow completed at %g, want 1.25", otherDone)
	}
	if f.State() != FlowPaused {
		t.Fatalf("paused flow state = %v", f.State())
	}
	if !approx(f.Remaining(), 975) {
		t.Fatalf("paused flow remaining = %g, want 975", f.Remaining())
	}
}

func TestPauseDuringLatencyStage(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 2, "l")
	var done sim.Time = -1
	f := net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 100, Latency: -1, Done: func(fl *Flow) { done = s.Now() }})
	s.At(1, func() { f.Pause() })
	s.At(10, func() { f.Resume() })
	s.Run()
	// Resume re-pays the 2s latency: 10 + 2 + 1 = 13.
	if !approx(done, 13) {
		t.Fatalf("completed at %g, want 13", done)
	}
}

func TestCancelSuppressesCallback(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	called := false
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 1000, Latency: -1, Done: func(fl *Flow) { called = true }})
	s.At(1, func() { f.Cancel() })
	s.Run()
	if called {
		t.Fatal("Done callback ran for canceled flow")
	}
	if f.State() != FlowDone {
		t.Fatalf("state = %v, want done", f.State())
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after cancel", net.ActiveFlows())
	}
}

func TestDoneCallbackCanChainFlows(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var last sim.Time
	hops := 0
	var start func()
	start = func() {
		net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(f *Flow) {
			hops++
			last = s.Now()
			if hops < 3 {
				start()
			}
		}})
	}
	start()
	s.Run()
	if hops != 3 {
		t.Fatalf("chained %d flows, want 3", hops)
	}
	if !approx(last, 3) {
		t.Fatalf("chain finished at %g, want 3", last)
	}
}

func TestLinkUtilisationAccounting(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 3, 100)
	net.StartFlow(FlowSpec{Links: links, Bytes: 250, Latency: -1})
	s.Run()
	for _, id := range links {
		if got := net.Link(id).BytesCarried(); !approx(got, 250) {
			t.Fatalf("link carried %g bytes, want 250", got)
		}
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("negative bytes did not panic")
		}
	}()
	net.StartFlow(FlowSpec{Links: links, Bytes: -1, Latency: -1})
}

func TestBadLinkPanics(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	net.AddLink(a, b, 0, 0, "bad")
}

func TestManyFlowsCrossTraffic(t *testing.T) {
	// 4-node ring; flows in both directions on disjoint links must not
	// interfere; same-link flows must share.
	s := sim.NewScheduler()
	net := New(s)
	n := make([]NodeID, 4)
	for i := range n {
		n[i] = net.AddNode("n")
	}
	fw := make([]LinkID, 4) // i -> i+1
	for i := 0; i < 4; i++ {
		fw[i] = net.AddLink(n[i], n[(i+1)%4], 100, 0, "fw")
	}
	var d1, d2 sim.Time
	// Two flows around disjoint halves of the ring.
	net.StartFlow(FlowSpec{Links: []LinkID{fw[0], fw[1]}, Bytes: 100, Latency: -1, Done: func(f *Flow) { d1 = s.Now() }})
	net.StartFlow(FlowSpec{Links: []LinkID{fw[2], fw[3]}, Bytes: 100, Latency: -1, Done: func(f *Flow) { d2 = s.Now() }})
	s.Run()
	if !approx(d1, 1) || !approx(d2, 1) {
		t.Fatalf("disjoint flows finished at %g, %g, want 1, 1", d1, d2)
	}
}

// Property: max-min rates never oversubscribe a link, and every flow is
// bottlenecked somewhere (work conservation: each flow crosses at least
// one saturated link, or runs at infinity when unconstrained).
func TestPropertyMaxMinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		net := New(s)
		nodes := make([]NodeID, 6)
		for i := range nodes {
			nodes[i] = net.AddNode("n")
		}
		nLinks := 8
		links := make([]LinkID, nLinks)
		for i := 0; i < nLinks; i++ {
			bw := float64(rng.Intn(900) + 100)
			links[i] = net.AddLink(nodes[rng.Intn(6)], nodes[rng.Intn(6)], bw, 0, "l")
		}
		nFlows := rng.Intn(10) + 1
		flows := make([]*Flow, nFlows)
		for i := range flows {
			k := rng.Intn(3) + 1
			route := make([]LinkID, 0, k)
			seen := map[LinkID]bool{}
			for len(route) < k {
				id := links[rng.Intn(nLinks)]
				if !seen[id] {
					seen[id] = true
					route = append(route, id)
				}
			}
			flows[i] = net.StartFlow(FlowSpec{Links: route, Bytes: 1e15, Latency: -1})
		}
		s.RunUntil(0)
		// Invariant 1: no link oversubscribed.
		rates := net.LinkRates()
		for id, sum := range rates {
			cap := net.Link(id).Bandwidth
			if sum > cap*(1+1e-6) {
				return false
			}
		}
		// Invariant 2: every flow crosses a saturated link.
		for _, fl := range flows {
			saturated := false
			for _, l := range fl.links {
				if rates[l.ID] >= l.Bandwidth*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		// Invariant 3 (max-min fairness): a flow's rate can only be
		// below another's if they share a link that is saturated and
		// the smaller flow is at most the larger's rate on that link.
		// We check the standard condition: for each flow, on some
		// saturated link it crosses, its rate is >= every other flow's
		// rate on that link (it is a "locally maximal" flow there).
		for _, fl := range flows {
			ok := false
			for _, l := range fl.links {
				if rates[l.ID] < l.Bandwidth*(1-1e-6) {
					continue
				}
				localMax := true
				for _, other := range flows {
					if other.state != FlowActive || !crossesLink(other, l) {
						continue
					}
					if other.rate > fl.rate*(1+1e-6) {
						localMax = false
						break
					}
				}
				if localMax {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		for _, fl := range flows {
			fl.Cancel()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes delivered equals total bytes requested, for any
// staggered start pattern.
func TestPropertyConservationOfBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		net, links := line(s, 2, 100)
		n := rng.Intn(8) + 1
		total := 0.0
		doneBytes := 0.0
		for i := 0; i < n; i++ {
			bytes := float64(rng.Intn(500) + 1)
			total += bytes
			start := sim.Time(rng.Intn(10))
			b := bytes
			s.At(start, func() {
				net.StartFlow(FlowSpec{Links: links, Bytes: b, Latency: -1, Done: func(fl *Flow) { doneBytes += b }})
			})
		}
		s.Run()
		return approx(doneBytes, total) && approx(net.Link(links[0]).BytesCarried(), total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStaggeredArrivalExactTimes(t *testing.T) {
	// f1 (300 B) starts at 0; f2 (100 B) starts at 1.
	// t∈[0,1): f1 alone at 100 → 100 done.
	// t∈[1,3): both at 50 → f2 done at 3 (100B), f1 has 300-100-100=100 left.
	// t∈[3,4): f1 at 100 → done at 4.
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var t1, t2 sim.Time
	net.StartFlow(FlowSpec{Links: links, Bytes: 300, Latency: -1, Done: func(f *Flow) { t1 = s.Now() }})
	s.At(1, func() {
		net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(f *Flow) { t2 = s.Now() }})
	})
	s.Run()
	if !approx(t2, 3) {
		t.Fatalf("f2 finished at %g, want 3", t2)
	}
	if !approx(t1, 4) {
		t.Fatalf("f1 finished at %g, want 4", t1)
	}
}
