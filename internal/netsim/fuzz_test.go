package netsim

import (
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

// FuzzWaterfill feeds random fault/churn programs to both rate engines
// and requires bit-identical behaviour. The fuzz input is interpreted
// as a byte-coded op sequence over a fixed 5-node, 10-link topology:
// each 3-byte chunk (op, a, b) first advances the injection clock, then
// starts a flow (plain or survivable), fails/degrades/restores a link,
// or pauses/resumes/cancels an earlier flow. The interpreter is total —
// every input decodes to a valid program — so the fuzzer explores the
// engine state space rather than a parser.
//
// Run the deterministic corpus with the ordinary test suite, or explore
// with: go test -fuzz=FuzzWaterfill ./internal/netsim
func FuzzWaterfill(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x30, 0x02, 0x02, 0x00, 0x03})
	f.Add([]byte{
		0x01, 0x12, 0x24, 0x00, 0x45, 0x11, 0x02, 0x02, 0x04,
		0x03, 0x02, 0x35, 0x01, 0x07, 0x52, 0x04, 0x02, 0x01,
	})
	f.Add([]byte{
		0x00, 0xff, 0x07, 0x01, 0x3c, 0x1b, 0x05, 0x00, 0x02,
		0x06, 0x00, 0x04, 0x02, 0x05, 0x01, 0x02, 0x06, 0x03,
		0x07, 0x01, 0x00,
	})
	f.Add([]byte{
		0x01, 0x08, 0x10, 0x01, 0x19, 0x21, 0x01, 0x2a, 0x32,
		0x02, 0x00, 0x01, 0x02, 0x03, 0x02, 0x02, 0x06, 0x04,
		0x02, 0x09, 0x01, 0x03, 0x04, 0x55,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 999 {
			t.Skip()
		}
		opt := runFuzzProgram(data, false)
		ref := runFuzzProgram(data, true)
		compareFaultRecords(t, "fuzz", opt, ref)
	})
}

// runFuzzProgram decodes and replays one fuzz program on a fresh
// network (the reference engine when reference is set) and records
// every observable.
func runFuzzProgram(data []byte, reference bool) faultRecord {
	s := sim.NewScheduler()
	net := New(s)
	if reference {
		net.useReferenceEngine()
	}
	const nNodes, nLinks = 5, 10
	nodes := make([]NodeID, nNodes)
	for i := range nodes {
		nodes[i] = net.AddNode("n")
	}
	links := make([]LinkID, nLinks)
	for i := range links {
		links[i] = net.AddLink(
			nodes[i%nNodes], nodes[(i+1+i/nNodes)%nNodes],
			50*float64(1+i%4), 0.1*float64(i%3), "l")
	}
	route := func(a, b byte) []LinkID {
		k := 1 + int(a)%3
		step := 1 + int(b)%3
		out := make([]LinkID, 0, k)
		for j := 0; j < k; j++ {
			out = append(out, links[(int(a)+j*step)%nLinks])
		}
		return out
	}

	var rec faultRecord
	var flows []*Flow
	slot := 0
	for i := 0; i+3 <= len(data); i += 3 {
		slot++
	}
	flows = make([]*Flow, 0, slot)
	at := sim.Time(0)
	for i := 0; i+3 <= len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		at += sim.Time(b&7) * 0.25
		switch t, kind := at, op%8; kind {
		case 0, 1:
			idx := len(flows)
			flows = append(flows, nil) // slot reserved in program order
			primary := route(a, b)
			spare := route(a+3, b+5)
			s.At(t, func() {
				spec := FlowSpec{
					Links: primary, Bytes: 25 * float64(1+int(b)%32), Latency: -1,
					Done:   func(g *Flow) { rec.finishOrder = append(rec.finishOrder, g.ID()) },
					OnFail: func(g *Flow) { rec.failOrder = append(rec.failOrder, g.ID()) },
				}
				if kind == 1 {
					spec.Reroute = func(attempt int) ([]LinkID, bool) {
						if attempt > 2 {
							return nil, false
						}
						return spare, true
					}
				}
				flows[idx] = net.StartFlow(spec)
			})
		case 2:
			s.At(t, func() { net.Link(links[int(a)%nLinks]).Fail() })
		case 3:
			s.At(t, func() {
				if l := net.Link(links[int(a)%nLinks]); !l.Failed() {
					l.Degrade(float64(1+int(b)%10) / 10)
				}
			})
		case 4:
			s.At(t, func() {
				if l := net.Link(links[int(a)%nLinks]); !l.Failed() {
					l.Restore()
				}
			})
		default: // 5 pause, 6 resume, 7 cancel
			s.At(t, func() {
				if len(flows) == 0 {
					return
				}
				g := flows[int(a)%len(flows)]
				if g == nil {
					return
				}
				switch kind {
				case 5:
					g.Pause()
				case 6:
					g.Resume()
				case 7:
					g.Cancel()
				}
			})
		}
	}
	rec.endTime = s.RunUntil(1e6)
	for _, g := range flows {
		if g == nil {
			rec.states = append(rec.states, FlowLatency)
			rec.remaining = append(rec.remaining, -1)
			rec.finished = append(rec.finished, -1)
			rec.retries = append(rec.retries, -1)
			continue
		}
		rec.states = append(rec.states, g.State())
		rec.remaining = append(rec.remaining, g.remaining)
		rec.finished = append(rec.finished, g.finished)
		rec.retries = append(rec.retries, g.Retries())
	}
	for _, id := range links {
		rec.linkBytes = append(rec.linkBytes, net.Link(id).BytesCarried())
	}
	return rec
}
