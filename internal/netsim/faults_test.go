package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/wafernet/fred/internal/metrics"
	"github.com/wafernet/fred/internal/sim"
)

// twoPath builds the minimal reroutable topology: a → b over primary l1
// and spare l2.
func twoPath(bw1, bw2 float64) (*sim.Scheduler, *Network, LinkID, LinkID) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, bw1, 0, "l1")
	l2 := net.AddLink(a, b, bw2, 0, "l2")
	return s, net, l1, l2
}

func TestLinkFailAbortsFlowWithoutReroute(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	var failed *Flow
	doneRan := false
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Done:   func(*Flow) { doneRan = true },
		OnFail: func(g *Flow) { failed = g },
		Label:  "victim",
	})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)

	if !net.Link(l1).Failed() {
		t.Fatal("link did not report Failed")
	}
	if f.State() != FlowFailed {
		t.Fatalf("flow state = %v, want failed", f.State())
	}
	if failed != f {
		t.Fatal("OnFail not invoked with the aborted flow")
	}
	if doneRan {
		t.Fatal("Done ran for an aborted flow")
	}
	if got := f.Remaining(); got != 50 {
		t.Fatalf("remaining = %v, want 50 (half transferred before the failure)", got)
	}
	if f.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", f.Retries())
	}
	if got := reg.Lookup("net/flows_aborted").Value(); got != 1 {
		t.Fatalf("flows_aborted = %v, want 1", got)
	}
}

func TestLinkFailRerouteCompletes(t *testing.T) {
	s, net, l1, l2 := twoPath(100, 50)
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	var attempts []int
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(attempt int) ([]LinkID, bool) {
			attempts = append(attempts, attempt)
			return []LinkID{l2}, true
		},
		Label: "survivor",
	})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)

	if f.State() != FlowDone {
		t.Fatalf("flow state = %v, want done", f.State())
	}
	if f.Retries() != 1 || len(attempts) != 1 || attempts[0] != 1 {
		t.Fatalf("retries = %d, attempts = %v, want one attempt numbered 1", f.Retries(), attempts)
	}
	// 50 bytes moved before the failure at t=0.5; the rest drains on l2
	// at 50 B/s after the first backoff (1µs) and zero route latency.
	want := 0.5 + net.RetryPolicy().Backoff + 50.0/50.0
	if got := f.Finished(); got != want {
		t.Fatalf("finished at %v, want %v", got, want)
	}
	if got := reg.Lookup("net/flows_rerouted").Value(); got != 1 {
		t.Fatalf("flows_rerouted = %v, want 1", got)
	}
	if got := net.Link(l1).BytesCarried(); got != 50 {
		t.Fatalf("failed link carried %v bytes, want 50", got)
	}
	if got := net.Link(l2).BytesCarried(); got != 50 {
		t.Fatalf("spare link carried %v bytes, want 50", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	net.SetRetryPolicy(RetryPolicy{MaxRetries: 2, Backoff: 1e-6})
	failCount := 0
	// The reroute stubbornly returns the dead link, so every retry tears
	// down again at activation until the budget runs out.
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return []LinkID{l1}, true },
		OnFail:  func(*Flow) { failCount++ },
	})
	s.At(0.25, func() { net.Link(l1).Fail() })
	s.RunUntil(10)

	if f.State() != FlowFailed {
		t.Fatalf("flow state = %v, want failed", f.State())
	}
	// Teardowns: the failure itself, then two budgeted retries that land
	// back on the dead link; the third teardown exceeds MaxRetries=2.
	if f.Retries() != 3 {
		t.Fatalf("retries = %d, want 3", f.Retries())
	}
	if failCount != 1 {
		t.Fatalf("OnFail ran %d times, want 1", failCount)
	}
}

func TestRerouteDeclining(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return nil, false },
	})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)
	if f.State() != FlowFailed {
		t.Fatalf("flow state = %v, want failed after reroute declined", f.State())
	}
	// The decline happens at retry-fire time, after one backoff.
	if want := 0.5 + net.RetryPolicy().Backoff; f.Finished() != want {
		t.Fatalf("finished at %v, want %v", f.Finished(), want)
	}
}

func TestExponentialBackoffDoubling(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	net.SetRetryPolicy(RetryPolicy{MaxRetries: 3, Backoff: 0.5})
	var fireTimes []sim.Time
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) {
			fireTimes = append(fireTimes, s.Now())
			return []LinkID{l1}, true // still dead: forces the next backoff
		},
	})
	_ = f
	s.At(1.0, func() { net.Link(l1).Fail() })
	s.RunUntil(100)
	// Teardown at t=1 → retry 1 fires at +0.5; re-activation at the same
	// time tears down again → retry 2 at +1.0; then retry 3 at +2.0.
	want := []sim.Time{1.5, 2.5, 4.5}
	if len(fireTimes) != len(want) {
		t.Fatalf("reroute fired %d times at %v, want %d", len(fireTimes), fireTimes, len(want))
	}
	for i := range want {
		if fireTimes[i] != want[i] {
			t.Fatalf("retry %d fired at %v, want %v (backoff must double)", i+1, fireTimes[i], want[i])
		}
	}
}

func TestFailCatchesLatencyStageFlow(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 1.0, "l1")
	l2 := net.AddLink(a, b, 100, 0, "l2")
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: -1,
		Reroute: func(int) ([]LinkID, bool) { return []LinkID{l2}, true },
	})
	// Fail while the flow is still paying its 1s route latency: it must
	// be diverted at activation, not attach to the dead link.
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)
	if f.State() != FlowDone {
		t.Fatalf("flow state = %v, want done", f.State())
	}
	if got := net.Link(l1).BytesCarried(); got != 0 {
		t.Fatalf("dead link carried %v bytes, want 0", got)
	}
	if got := net.Link(l2).BytesCarried(); got != 100 {
		t.Fatalf("spare carried %v bytes, want 100", got)
	}
}

func TestFailCatchesPausedFlowOnResume(t *testing.T) {
	s, net, l1, l2 := twoPath(100, 100)
	f := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 100, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return []LinkID{l2}, true },
	})
	s.At(0.2, func() { f.Pause() })
	s.At(0.3, func() { net.Link(l1).Fail() })
	s.At(0.4, func() { f.Resume() })
	s.RunUntil(10)
	if f.State() != FlowDone {
		t.Fatalf("flow state = %v, want done", f.State())
	}
	if got := net.Link(l2).BytesCarried(); got != 80 {
		t.Fatalf("spare carried %v bytes, want the 80 remaining after the pause", got)
	}
}

func TestDegradeRestore(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	f1 := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9, Latency: 0})
	f2 := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9, Latency: 0})
	s.RunUntil(1)
	if f1.Rate() != 50 || f2.Rate() != 50 {
		t.Fatalf("healthy rates = %v, %v, want 50, 50", f1.Rate(), f2.Rate())
	}
	net.Link(l1).Degrade(0.5)
	s.RunUntil(2)
	if f1.Rate() != 25 || f2.Rate() != 25 {
		t.Fatalf("degraded rates = %v, %v, want 25, 25", f1.Rate(), f2.Rate())
	}
	// Degrade factors compose against the healthy bandwidth, not the
	// current one.
	net.Link(l1).Degrade(0.8)
	s.RunUntil(3)
	if f1.Rate() != 40 || f2.Rate() != 40 {
		t.Fatalf("re-degraded rates = %v, %v, want 40, 40", f1.Rate(), f2.Rate())
	}
	net.Link(l1).Restore()
	s.RunUntil(4)
	if f1.Rate() != 50 || f2.Rate() != 50 {
		t.Fatalf("restored rates = %v, %v, want 50, 50", f1.Rate(), f2.Rate())
	}
	if net.Link(l1).Bandwidth != 100 {
		t.Fatalf("restored bandwidth = %v, want 100", net.Link(l1).Bandwidth)
	}
}

func TestDegradePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 0, "l")
	inf := net.AddLink(a, b, math.Inf(1), 0, "inf")
	mustPanic("factor 0", func() { net.Link(l).Degrade(0) })
	mustPanic("factor > 1", func() { net.Link(l).Degrade(1.5) })
	mustPanic("infinite link", func() { net.Link(inf).Degrade(0.5) })
	net.Link(l).Fail()
	mustPanic("failed link", func() { net.Link(l).Degrade(0.5) })
	mustPanic("restore failed link", func() { net.Link(l).Restore() })
}

func TestFailNode(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	hub := net.AddNode("hub")
	var spokes []NodeID
	for i := 0; i < 4; i++ {
		spokes = append(spokes, net.AddNode("s"))
	}
	var in, out []LinkID
	for _, sp := range spokes {
		out = append(out, net.AddLink(hub, sp, 100, 0, "out"))
		in = append(in, net.AddLink(sp, hub, 100, 0, "in"))
	}
	side := net.AddLink(spokes[0], spokes[1], 100, 0, "side")
	if got := net.FailNode(hub); got != 8 {
		t.Fatalf("FailNode failed %d links, want 8", got)
	}
	for _, id := range append(append([]LinkID(nil), in...), out...) {
		if !net.Link(id).Failed() {
			t.Fatalf("link %d still alive after FailNode", id)
		}
	}
	if net.Link(side).Failed() {
		t.Fatal("untouched link failed")
	}
	// Idempotent: a second call finds nothing left to fail.
	if got := net.FailNode(hub); got != 0 {
		t.Fatalf("second FailNode failed %d links, want 0", got)
	}
}

func TestCancelAndPauseAfterAbortAreNoops(t *testing.T) {
	s, net, l1, _ := twoPath(100, 100)
	f := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 100, Latency: 0})
	s.At(0.5, func() { net.Link(l1).Fail() })
	s.RunUntil(10)
	if f.State() != FlowFailed {
		t.Fatalf("flow state = %v, want failed", f.State())
	}
	f.Cancel()
	f.Pause()
	f.Resume()
	if f.State() != FlowFailed {
		t.Fatalf("state after Cancel/Pause/Resume = %v, want still failed", f.State())
	}
}

func TestFailureRedistributesBandwidth(t *testing.T) {
	// Two flows share l1; a third rides l2. When l1 fails, its surviving
	// competitor reroutes onto l2 and the max-min share there halves.
	s, net, l1, l2 := twoPath(100, 100)
	f1 := net.StartFlow(FlowSpec{
		Links: []LinkID{l1}, Bytes: 1e9, Latency: 0,
		Reroute: func(int) ([]LinkID, bool) { return []LinkID{l2}, true },
	})
	f2 := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9, Latency: 0})
	f3 := net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9, Latency: 0})
	s.RunUntil(1)
	if f1.Rate() != 50 || f2.Rate() != 50 || f3.Rate() != 100 {
		t.Fatalf("healthy rates = %v, %v, %v", f1.Rate(), f2.Rate(), f3.Rate())
	}
	net.Link(l1).Fail()
	s.RunUntil(2)
	if f1.State() != FlowActive || f1.Rate() != 50 {
		t.Fatalf("rerouted flow: state %v rate %v, want active at 50", f1.State(), f1.Rate())
	}
	if f2.State() != FlowFailed {
		t.Fatalf("unprotected flow state = %v, want failed", f2.State())
	}
	if f3.Rate() != 50 {
		t.Fatalf("incumbent rate = %v, want 50 after the reroute joins l2", f3.Rate())
	}
}

// ---------------------------------------------------------------------
// Differential fault churn: seeded random scenarios mixing flow churn
// with link failures, degradation/recovery and node dropouts, replayed
// on both engines and compared bit-for-bit (the fault analogue of
// TestDifferentialEnginesBitIdentical).
// ---------------------------------------------------------------------

type faultOp struct {
	at     sim.Time
	kind   int // 0 pause, 1 resume, 2 cancel, 3 fail link, 4 degrade, 5 restore, 6 fail node
	flow   int
	link   int
	node   int
	factor float64
}

type faultScenario struct {
	nNodes    int
	linkSrc   []int
	linkDst   []int
	linkBW    []float64
	linkLat   []float64
	flowRoute [][]int
	flowBytes []float64
	flowStart []sim.Time
	// spares[i] holds flow i's precomputed retry routes, consumed one
	// per attempt; a flow with no spares aborts on first failure.
	spares [][][]int
	ops    []faultOp
	probes []sim.Time
}

func makeFaultScenario(seed int64) faultScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := faultScenario{nNodes: 3 + rng.Intn(8)}
	nLinks := 6 + rng.Intn(10)
	for i := 0; i < nLinks; i++ {
		// All links finite: Degrade targets are drawn freely.
		sc.linkSrc = append(sc.linkSrc, rng.Intn(sc.nNodes))
		sc.linkDst = append(sc.linkDst, rng.Intn(sc.nNodes))
		sc.linkBW = append(sc.linkBW, roundOr(rng, 100, 1000))
		lat := 0.0
		if rng.Intn(2) == 0 {
			lat = roundOr(rng, 0.5, 0.25)
		}
		sc.linkLat = append(sc.linkLat, lat)
	}
	route := func() []int {
		k := 1 + rng.Intn(minInt(4, nLinks))
		perm := rng.Perm(nLinks)
		return append([]int(nil), perm[:k]...)
	}
	nFlows := 5 + rng.Intn(12)
	for i := 0; i < nFlows; i++ {
		sc.flowRoute = append(sc.flowRoute, route())
		sc.flowBytes = append(sc.flowBytes, roundOr(rng, 100, 5000))
		sc.flowStart = append(sc.flowStart, sim.Time(rng.Intn(8)))
		var sp [][]int
		if rng.Intn(3) != 0 { // two thirds of flows are survivable
			for k := 1 + rng.Intn(4); k > 0; k-- {
				sp = append(sp, route())
			}
		}
		sc.spares = append(sc.spares, sp)
	}
	nOps := 6 + rng.Intn(14)
	for i := 0; i < nOps; i++ {
		at := sim.Time(rng.Intn(12))
		if rng.Intn(2) == 0 {
			at += sim.Time(rng.Float64())
		}
		op := faultOp{
			at:     at,
			flow:   rng.Intn(nFlows),
			link:   rng.Intn(nLinks),
			node:   rng.Intn(sc.nNodes),
			factor: float64(1+rng.Intn(10)) / 10,
		}
		// Weight towards fault events; churn ops keep the interleaving
		// honest.
		switch r := rng.Intn(10); {
		case r < 3:
			op.kind = 3 // fail link
		case r < 5:
			op.kind = 4 // degrade
		case r < 6:
			op.kind = 5 // restore
		case r < 7:
			op.kind = 6 // fail node
		default:
			op.kind = rng.Intn(3) // pause/resume/cancel
		}
		sc.ops = append(sc.ops, op)
	}
	for i := 0; i < 4; i++ {
		sc.probes = append(sc.probes, sim.Time(i*3)+sim.Time(rng.Intn(2)))
	}
	return sc
}

type faultRecord struct {
	states      []FlowState
	remaining   []float64
	finished    []sim.Time
	retries     []int
	finishOrder []uint64
	failOrder   []uint64
	rateSamples []float64
	linkBytes   []float64
	endTime     sim.Time
}

func (sc faultScenario) run(reference bool) faultRecord {
	s := sim.NewScheduler()
	net := New(s)
	if reference {
		net.useReferenceEngine()
	}
	nodes := make([]NodeID, sc.nNodes)
	for i := range nodes {
		nodes[i] = net.AddNode("n")
	}
	links := make([]LinkID, len(sc.linkBW))
	for i := range links {
		links[i] = net.AddLink(nodes[sc.linkSrc[i]], nodes[sc.linkDst[i]], sc.linkBW[i], sc.linkLat[i], "l")
	}
	ids := func(route []int) []LinkID {
		out := make([]LinkID, len(route))
		for i, li := range route {
			out[i] = links[li]
		}
		return out
	}

	var rec faultRecord
	flows := make([]*Flow, len(sc.flowRoute))
	for i := range sc.flowRoute {
		i := i
		s.At(sc.flowStart[i], func() {
			spec := FlowSpec{
				Links: ids(sc.flowRoute[i]), Bytes: sc.flowBytes[i], Latency: -1,
				Done:   func(f *Flow) { rec.finishOrder = append(rec.finishOrder, f.ID()) },
				OnFail: func(f *Flow) { rec.failOrder = append(rec.failOrder, f.ID()) },
			}
			if sp := sc.spares[i]; len(sp) > 0 {
				spec.Reroute = func(attempt int) ([]LinkID, bool) {
					if attempt > len(sp) {
						return nil, false
					}
					return ids(sp[attempt-1]), true
				}
			}
			flows[i] = net.StartFlow(spec)
		})
	}
	for _, op := range sc.ops {
		op := op
		s.At(op.at, func() {
			switch op.kind {
			case 0, 1, 2:
				f := flows[op.flow]
				if f == nil {
					return
				}
				switch op.kind {
				case 0:
					f.Pause()
				case 1:
					f.Resume()
				case 2:
					f.Cancel()
				}
			case 3:
				net.Link(links[op.link]).Fail()
			case 4:
				if l := net.Link(links[op.link]); !l.Failed() {
					l.Degrade(op.factor)
				}
			case 5:
				if l := net.Link(links[op.link]); !l.Failed() {
					l.Restore()
				}
			case 6:
				net.FailNode(nodes[op.node])
			}
		})
	}
	for _, at := range sc.probes {
		s.At(at, func() {
			for _, f := range flows {
				if f != nil {
					rec.rateSamples = append(rec.rateSamples, f.Rate())
				}
			}
		})
	}
	rec.endTime = s.RunUntil(1e6)
	for _, f := range flows {
		rec.states = append(rec.states, f.State())
		rec.remaining = append(rec.remaining, f.remaining)
		rec.finished = append(rec.finished, f.finished)
		rec.retries = append(rec.retries, f.Retries())
	}
	for _, id := range links {
		rec.linkBytes = append(rec.linkBytes, net.Link(id).BytesCarried())
	}
	return rec
}

func compareFaultRecords(t *testing.T, tag string, opt, ref faultRecord) {
	t.Helper()
	if opt.endTime != ref.endTime {
		t.Errorf("%s: end time %v != reference %v", tag, opt.endTime, ref.endTime)
	}
	for i := range opt.states {
		if opt.states[i] != ref.states[i] {
			t.Errorf("%s: flow %d state %v != reference %v", tag, i, opt.states[i], ref.states[i])
		}
		if opt.remaining[i] != ref.remaining[i] {
			t.Errorf("%s: flow %d remaining %v != reference %v", tag, i, opt.remaining[i], ref.remaining[i])
		}
		if opt.finished[i] != ref.finished[i] {
			t.Errorf("%s: flow %d finished %v != reference %v", tag, i, opt.finished[i], ref.finished[i])
		}
		if opt.retries[i] != ref.retries[i] {
			t.Errorf("%s: flow %d retries %d != reference %d", tag, i, opt.retries[i], ref.retries[i])
		}
	}
	if len(opt.finishOrder) != len(ref.finishOrder) {
		t.Fatalf("%s: %d completions != reference %d", tag, len(opt.finishOrder), len(ref.finishOrder))
	}
	for i := range opt.finishOrder {
		if opt.finishOrder[i] != ref.finishOrder[i] {
			t.Fatalf("%s: completion order diverges at %d: %d != %d", tag, i, opt.finishOrder[i], ref.finishOrder[i])
		}
	}
	if len(opt.failOrder) != len(ref.failOrder) {
		t.Fatalf("%s: %d aborts != reference %d", tag, len(opt.failOrder), len(ref.failOrder))
	}
	for i := range opt.failOrder {
		if opt.failOrder[i] != ref.failOrder[i] {
			t.Fatalf("%s: abort order diverges at %d: %d != %d", tag, i, opt.failOrder[i], ref.failOrder[i])
		}
	}
	if len(opt.rateSamples) != len(ref.rateSamples) {
		t.Fatalf("%s: %d rate samples != reference %d", tag, len(opt.rateSamples), len(ref.rateSamples))
	}
	for i := range opt.rateSamples {
		if opt.rateSamples[i] != ref.rateSamples[i] {
			t.Errorf("%s: rate sample %d: %v != reference %v", tag, i, opt.rateSamples[i], ref.rateSamples[i])
		}
	}
	for i := range opt.linkBytes {
		if opt.linkBytes[i] != ref.linkBytes[i] {
			t.Errorf("%s: link %d carried %v != reference %v", tag, i, opt.linkBytes[i], ref.linkBytes[i])
		}
	}
}

// TestDifferentialFaultChurnBitIdentical extends the engine equivalence
// property to fault churn: 50 seeded scenarios of failures, degradation
// and recovery interleaved with flow churn, bit-identical across both
// engines.
func TestDifferentialFaultChurnBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sc := makeFaultScenario(seed)
		tag := fmt.Sprintf("seed %d", seed)
		compareFaultRecords(t, tag, sc.run(false), sc.run(true))
		if t.Failed() {
			t.Fatalf("%s: engines diverged under fault churn", tag)
		}
	}
}

// TestRecomputeFaultChurnZeroAlloc extends the steady-state zero-alloc
// gate to fault churn: after a link failure has torn flows down, and
// while a link oscillates between degraded and healthy, the forced
// recompute must still perform no allocation.
func TestRecomputeFaultChurnZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	links := make([]LinkID, 8)
	for i := range links {
		links[i] = net.AddLink(a, b, 100+float64(i), 0, "l")
	}
	for i := 0; i < 32; i++ {
		net.StartFlow(FlowSpec{
			Links: []LinkID{links[i%8], links[(i+3)%8]}, Bytes: 1e12, Latency: 0,
		})
	}
	s.RunUntil(0)
	// Fail one link: its flows abort (no reroute), the rest keep going.
	net.Link(links[7]).Fail()
	s.RunUntil(1)
	if net.ActiveFlows() == 0 || net.ActiveFlows() == 32 {
		t.Fatalf("active = %d, want a strict subset surviving the failure", net.ActiveFlows())
	}
	victim := net.Link(links[0])
	// Warm up once so the dirty-event and heap capacity are in place.
	victim.Degrade(0.5)
	net.recompute()
	victim.Restore()
	net.recompute()
	allocs := testing.AllocsPerRun(100, func() {
		victim.Degrade(0.5)
		net.recompute()
		victim.Restore()
		net.recompute()
	})
	if allocs != 0 {
		t.Fatalf("fault-churn recompute allocates %v objects/op, want 0", allocs)
	}
}
