package netsim

import (
	"math"
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

func TestResumeRunningFlowNoop(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	var done sim.Time
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Done: func(*Flow) { done = s.Now() }})
	s.At(0.5, func() { f.Resume() }) // not paused: must be a no-op
	s.Run()
	if !approx(done, 1) {
		t.Fatalf("Resume on running flow perturbed completion: %g", done)
	}
}

func TestPauseDoneFlowNoop(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1})
	s.Run()
	f.Pause()
	f.Resume()
	if f.State() != FlowDone {
		t.Fatalf("state = %v", f.State())
	}
}

func TestDuplicateLinksDeduplicated(t *testing.T) {
	// A route mentioning the same link twice occupies it once.
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	dup := []LinkID{links[0], links[0], links[0]}
	var done sim.Time
	net.StartFlow(FlowSpec{Links: dup, Bytes: 100, Latency: -1, Done: func(*Flow) { done = s.Now() }})
	s.Run()
	if !approx(done, 1) {
		t.Fatalf("deduped flow finished at %g, want 1", done)
	}
	if got := net.Link(links[0]).BytesCarried(); !approx(got, 100) {
		t.Fatalf("link carried %g, want 100 (no double count)", got)
	}
}

func TestCancelDuringLatencyStage(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 5, "l")
	called := false
	f := net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 100, Latency: -1, Done: func(*Flow) { called = true }})
	s.At(1, func() { f.Cancel() })
	s.Run()
	if called {
		t.Fatal("canceled latency-stage flow completed")
	}
	if net.ActiveFlows() != 0 {
		t.Fatal("flow leaked into active set")
	}
}

func TestFlowAccessors(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	f := net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: -1, Label: "probe"})
	if f.Label() != "probe" {
		t.Fatalf("Label = %q", f.Label())
	}
	if f.Started() != 0 {
		t.Fatalf("Started = %g", f.Started())
	}
	s.Run()
	if !approx(f.Finished(), 1) {
		t.Fatalf("Finished = %g", f.Finished())
	}
	if f.Rate() != 0 {
		t.Fatalf("Rate after done = %g", f.Rate())
	}
}

func TestNodeNameAndCounts(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	id := net.AddNode("hello")
	if net.NodeName(id) != "hello" {
		t.Fatal("NodeName")
	}
	if net.NumNodes() != 1 || net.NumLinks() != 0 {
		t.Fatal("counts")
	}
}

func TestThreeWayBottleneckFairness(t *testing.T) {
	// Three flows, one shared link: each gets a third.
	s := sim.NewScheduler()
	net, links := line(s, 2, 90)
	f1 := net.StartFlow(FlowSpec{Links: links, Bytes: 1e9, Latency: -1})
	f2 := net.StartFlow(FlowSpec{Links: links, Bytes: 1e9, Latency: -1})
	f3 := net.StartFlow(FlowSpec{Links: links, Bytes: 1e9, Latency: -1})
	s.RunUntil(0)
	for _, f := range []*Flow{f1, f2, f3} {
		if !approx(f.Rate(), 30) {
			t.Fatalf("rate = %g, want 30", f.Rate())
		}
	}
	f1.Cancel()
	s.RunUntil(0)
	if !approx(f2.Rate(), 45) || !approx(f3.Rate(), 45) {
		t.Fatalf("after cancel rates = %g, %g, want 45", f2.Rate(), f3.Rate())
	}
	f2.Cancel()
	f3.Cancel()
	s.Run()
}

func TestNegativeLatencyLinkPanics(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.AddLink(a, b, 1, -1, "bad")
}

func TestFlowStateStrings(t *testing.T) {
	want := map[FlowState]string{
		FlowLatency: "latency", FlowActive: "active", FlowPaused: "paused", FlowDone: "done",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d = %q", int(st), st.String())
		}
	}
	if FlowState(99).String() == "" {
		t.Error("unknown state renders empty")
	}
}

func TestVeryLargeTransferNoOverflow(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 1e12)
	var done sim.Time
	net.StartFlow(FlowSpec{Links: links, Bytes: 1e15, Latency: -1, Done: func(*Flow) { done = s.Now() }})
	s.Run()
	if math.Abs(done-1000)/1000 > 1e-9 {
		t.Fatalf("1 PB at 1 TB/s = %g s, want 1000", done)
	}
}
