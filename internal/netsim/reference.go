package netsim

import (
	"math"

	"github.com/wafernet/fred/internal/sim"
)

// This file keeps the straightforward waterfilling implementation the
// incremental engine (netsim.go) replaced: per-recompute maps, a full
// progressive-filling pass on every active-set change, and
// cancel-and-recreate completion events. It exists solely as the
// differential-testing oracle — useReferenceEngine switches a network
// onto it, and the property tests in differential_test.go assert that
// both engines produce bit-identical rates, completion times and
// orders, and link byte counters over randomized churn. It is not
// reachable from production paths.

// useReferenceEngine routes all future rate recomputations of this
// network through referenceRecompute. It must be called before any
// flow is started and cannot be undone: the two engines keep different
// completion-event lifecycles, so switching mid-run is unsupported.
func (n *Network) useReferenceEngine() {
	n.recomputeFn = n.referenceRecompute
}

// referenceRecompute runs progressive filling over the active flows
// and reschedules every completion event, allocating fresh scratch
// maps and events each pass — the original engine, verbatim.
func (n *Network) referenceRecompute() {
	n.dirty = false
	n.settle()
	n.fillNeeded = false
	n.freePending = n.freePending[:0]

	// Progressive filling: raise all unfrozen flows' rates together;
	// whenever a link saturates, freeze its flows at the current rate.
	type linkState struct {
		residual float64
		unfrozen int
	}
	states := make(map[*Link]*linkState)
	frozen := make(map[*Flow]bool, len(n.active))
	unfrozenCount := 0
	for _, f := range n.active {
		f.rate = 0
		finite := false
		for _, l := range f.links {
			if math.IsInf(l.Bandwidth, 1) {
				continue
			}
			finite = true
			st := states[l]
			if st == nil {
				st = &linkState{residual: l.Bandwidth}
				states[l] = st
			}
			st.unfrozen++
		}
		if !finite {
			// Contention-free flow: freeze at infinite rate upfront.
			f.rate = math.Inf(1)
			frozen[f] = true
			continue
		}
		unfrozenCount++
	}
	for unfrozenCount > 0 {
		delta := math.Inf(1)
		for _, st := range states {
			if st.unfrozen == 0 {
				continue
			}
			if d := st.residual / float64(st.unfrozen); d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			for _, f := range n.active {
				if !frozen[f] {
					f.rate = math.Inf(1)
					frozen[f] = true
					unfrozenCount--
				}
			}
			break
		}
		for _, f := range n.active {
			if !frozen[f] {
				f.rate += delta
			}
		}
		for _, st := range states {
			if st.unfrozen > 0 {
				st.residual -= delta * float64(st.unfrozen)
			}
		}
		// Freeze flows crossing any saturated link.
		for _, f := range n.active {
			if frozen[f] {
				continue
			}
			for _, l := range f.links {
				st := states[l]
				if st != nil && st.residual <= rateEpsilon*l.Bandwidth {
					frozen[f] = true
					unfrozenCount--
					break
				}
			}
		}
		for _, st := range states {
			st.unfrozen = 0
		}
		for _, f := range n.active {
			if frozen[f] {
				continue
			}
			for _, l := range f.links {
				if st := states[l]; st != nil {
					st.unfrozen++
				}
			}
		}
	}

	// Reschedule completions at the new rates. Iterating the active
	// slice in order makes same-time completion events tie-break by
	// activation order — the (time, seq) contract.
	now := n.sched.Now()
	for _, f := range n.active {
		if f.complete != nil {
			n.sched.Cancel(f.complete)
			f.complete = nil
		}
		if f.rate <= 0 {
			continue
		}
		var eta sim.Time
		if math.IsInf(f.rate, 1) {
			eta = now
		} else {
			eta = now + f.remaining/f.rate
		}
		g := f
		f.complete = n.sched.At(eta, func() { n.finish(g) })
	}

	if n.tracer != nil || n.telemetry {
		n.observeRates(now)
	}
}
