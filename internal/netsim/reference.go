package netsim

import (
	"math"

	"github.com/wafernet/fred/internal/sim"
)

// This file keeps a straightforward waterfilling implementation as the
// differential-testing oracle for the sharded engine (domain.go): on
// every recompute it rediscovers the exact connected components of the
// active flows' routes from first principles with freshly allocated
// maps, refills every component, and re-times completions with
// per-flow cancel-and-recreate scheduler events. No partition cache,
// no dirty bits, no calendar, no parallelism — nothing the engine's
// incremental bookkeeping could hide a bug behind. useReferenceEngine
// switches a network onto it, and the property tests in
// differential_test.go assert that both engines produce bit-identical
// rates, completion times and orders, telemetry and link byte counters
// over randomized churn, fault and domain-merge/split scenarios. It is
// not reachable from production paths.
//
// The oracle fills per exact component (not one global pass) because
// the sharded engine's lazy skipping depends on it: a component's
// max-min rates are a pure function of the component, but the *float
// delta sequence* of a global fill interleaves unrelated components
// and rounds differently. Per-component filling is the canonical
// semantics both implementations share. Completions likewise follow
// the shared keep-unchanged-ETA discipline: a flow whose rate came out
// of the refill bitwise-unchanged keeps its armed completion event —
// re-deriving the ETA from the settled remaining would shift it by
// ULPs, which the engine's clean-domain skipping could never
// reproduce.

// useReferenceEngine routes all future rate recomputations of this
// network through referenceRecompute. It must be called before any
// flow is started and cannot be undone: the two engines keep different
// completion-event lifecycles, so switching mid-run is unsupported.
func (n *Network) useReferenceEngine() {
	n.recomputeFn = n.referenceRecompute
}

// referenceRecompute settles, rebuilds the exact route-connectivity
// components of all active flows, refills every component, and
// re-times completions — the oracle the sharded engine is tested
// against.
func (n *Network) referenceRecompute() {
	n.dirty = false
	n.settle()
	n.stats.Recomputes++
	n.armPass++

	// The shared activate/detach/fault paths still maintain the
	// engine's partition bookkeeping; drain its queues so they cannot
	// grow without bound under the oracle, mirroring the engine's
	// collection and O(1) reset points.
	for _, l := range n.dirtyRoots {
		l.domDirty = false
	}
	n.dirtyRoots = n.dirtyRoots[:0]
	n.allDirty = false

	// Exact connected components from first principles: a fresh
	// union-find over the finite links of every active route.
	parent := make(map[*Link]*Link)
	find := func(l *Link) *Link {
		for parent[l] != l {
			parent[l] = parent[parent[l]]
			l = parent[l]
		}
		return l
	}
	ensure := func(l *Link) {
		if _, ok := parent[l]; !ok {
			parent[l] = l
		}
	}
	for _, f := range n.active {
		if len(f.finiteLinks) == 0 {
			continue
		}
		ensure(f.finiteLinks[0])
		r := find(f.finiteLinks[0])
		for _, l := range f.finiteLinks[1:] {
			ensure(l)
			if r2 := find(l); r2 != r {
				parent[r2] = r
			}
		}
	}

	// Group flows by component, components ordered by their first
	// flow's activation — the same order the engine's sequential merge
	// visits them in.
	groups := make(map[*Link][]*Flow)
	var order []*Link
	for _, f := range n.active {
		if len(f.finiteLinks) == 0 {
			// Contention-free flow: freeze at infinite rate upfront.
			f.rate = math.Inf(1)
			continue
		}
		r := find(f.finiteLinks[0])
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], f)
	}
	for _, r := range order {
		n.referenceFillComponent(groups[r])
	}
	for i := range n.freePending {
		n.freePending[i] = nil
	}
	n.freePending = n.freePending[:0]
	if n.partActive == 0 {
		n.partVersion++
	}

	// Re-time completions at the new rates, iterating the active slice
	// in activation order so same-time events tie-break by activation —
	// the (time, seq) contract. A flow whose rate is bitwise-unchanged
	// keeps its pending event (and therefore its older insertion
	// sequence: events armed at earlier passes fire first among equal
	// ETAs — the order the engine's calendar key (eta, pass, actSeq)
	// reproduces).
	now := n.sched.Now()
	for _, f := range n.active {
		if f.rate <= 0 {
			if f.complete != nil {
				n.sched.Cancel(f.complete)
				f.complete = nil
			}
			f.etaValid = false
			continue
		}
		if f.etaValid && f.rate == f.etaRate {
			continue
		}
		var eta sim.Time
		if math.IsInf(f.rate, 1) {
			eta = now
		} else {
			eta = now + f.remaining/f.rate
		}
		f.eta, f.etaRate, f.etaValid = eta, f.rate, true
		if f.complete != nil {
			n.sched.Cancel(f.complete)
		}
		g := f
		f.complete = n.sched.At(eta, func() {
			if g.state != FlowActive {
				return // stale completion: flow left the active set
			}
			n.finish(g)
		})
	}

	if n.tracer != nil || n.telemetry || n.metrics != nil {
		n.observeRates(now, true)
	}
}

// referenceFillComponent runs progressive filling over one exact
// connected component with freshly allocated map scratch: raise all
// unfrozen flows' rates together; whenever a link saturates, freeze
// its flows at the current rate. Deterministic despite map iteration:
// the delta is a pure min over values, residual updates are per-link
// independent, and per-flow iteration follows the flows slice.
func (n *Network) referenceFillComponent(flows []*Flow) {
	type linkState struct {
		residual float64
		unfrozen int
	}
	states := make(map[*Link]*linkState)
	frozen := make(map[*Flow]bool, len(flows))
	unfrozenCount := 0
	for _, f := range flows {
		f.rate = 0
		for _, l := range f.finiteLinks {
			st := states[l]
			if st == nil {
				st = &linkState{residual: l.Bandwidth}
				states[l] = st
			}
			st.unfrozen++
		}
		unfrozenCount++
	}
	for unfrozenCount > 0 {
		delta := math.Inf(1)
		for _, st := range states {
			if st.unfrozen == 0 {
				continue
			}
			if d := st.residual / float64(st.unfrozen); d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			for _, f := range flows {
				if !frozen[f] {
					f.rate = math.Inf(1)
					frozen[f] = true
					unfrozenCount--
				}
			}
			break
		}
		for _, f := range flows {
			if !frozen[f] {
				f.rate += delta
			}
		}
		for _, st := range states {
			if st.unfrozen > 0 {
				st.residual -= delta * float64(st.unfrozen)
			}
		}
		// Freeze flows crossing any saturated link.
		for _, f := range flows {
			if frozen[f] {
				continue
			}
			for _, l := range f.finiteLinks {
				st := states[l]
				if st.residual <= rateEpsilon*l.Bandwidth {
					frozen[f] = true
					unfrozenCount--
					if n.crit != nil {
						f.bindLink = l
					}
					break
				}
			}
		}
		for _, st := range states {
			st.unfrozen = 0
		}
		for _, f := range flows {
			if frozen[f] {
				continue
			}
			for _, l := range f.finiteLinks {
				states[l].unfrozen++
			}
		}
	}
}
