package netsim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/wafernet/fred/internal/critpath"
	"github.com/wafernet/fred/internal/sim"
)

// Differential and unit tests for the contention-domain-sharded rate
// engine (domain.go): the sharded fill with per-domain dirty bits must
// be bit-identical to the reference oracle — and to itself at every
// fill pool width — over churn and fault scenarios that exercise
// domain merges (bridge flows spanning groups), splits (the O(1)
// partition reset after drains), Degrade/Restore dirtying, and link
// failures mid-collective.

// shardRecord captures every observable of one sharded-scenario run.
type shardRecord struct {
	finishTimes []sim.Time // per flow id; -1 if never finished
	finishOrder []uint64   // flow ids in Done-callback order
	failOrder   []uint64   // flow ids in OnFail order
	rateSamples []float64  // all flows' rates at each probe
	linkBytes   []float64  // final per-link byte counters (telemetry)
	peakUtil    []float64  // final per-link peak utilization (telemetry)
	stall       []float64  // per-flow contention integrals (critpath)
	bindLink    []string   // per-flow binding links (critpath blame)
	endTime     sim.Time
	stats       FillStats // compared across pool widths, not vs reference
}

// shardScenario is a deterministic multi-group program derived from a
// seed: G link groups that form independent contention domains, intra-
// group flows, bridge flows that merge two groups' domains mid-run,
// pause/resume/cancel churn, and Degrade/Restore/Fail fault ops.
type shardScenario struct {
	groups    int
	linkBW    []float64
	linkLat   []float64
	linkGroup []int
	flowRoute [][]int // indices into the link slices
	flowBytes []float64
	flowStart []sim.Time
	ops       []shardOp
	probes    []sim.Time
}

type shardOp struct {
	at     sim.Time
	kind   int // 0 pause, 1 resume, 2 cancel, 3 degrade, 4 restore, 5 fail
	flow   int
	link   int
	factor float64
}

func makeShardScenario(seed int64) shardScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := shardScenario{groups: 2 + rng.Intn(3)}
	linksOf := make([][]int, sc.groups)
	for g := 0; g < sc.groups; g++ {
		nl := 3 + rng.Intn(4)
		for i := 0; i < nl; i++ {
			lat := 0.0
			if rng.Intn(2) == 0 {
				lat = roundOr(rng, 0.5, 0.25)
			}
			linksOf[g] = append(linksOf[g], len(sc.linkBW))
			sc.linkBW = append(sc.linkBW, roundOr(rng, 100, 1000))
			sc.linkLat = append(sc.linkLat, lat)
			sc.linkGroup = append(sc.linkGroup, g)
		}
	}
	pick := func(g, k int) []int {
		ls := linksOf[g]
		if k > len(ls) {
			k = len(ls)
		}
		perm := rng.Perm(len(ls))
		r := make([]int, 0, k)
		for _, i := range perm[:k] {
			r = append(r, ls[i])
		}
		return r
	}
	nFlows := 6 + rng.Intn(14)
	for i := 0; i < nFlows; i++ {
		g := rng.Intn(sc.groups)
		route := pick(g, 1+rng.Intn(3))
		if rng.Float64() < 0.2 { // bridge flow: merges two domains
			route = append(route, pick((g+1+rng.Intn(sc.groups-1))%sc.groups, 1+rng.Intn(2))...)
		}
		sc.flowRoute = append(sc.flowRoute, route)
		// Bytes stay strictly positive: zero-byte flows finish inside
		// activate, where completion-vs-recompute interleaving at tied
		// timestamps is not part of the cross-engine contract.
		sc.flowBytes = append(sc.flowBytes, roundOr(rng, 100, 5000))
		sc.flowStart = append(sc.flowStart, sim.Time(rng.Intn(8)))
	}
	nOps := 4 + rng.Intn(12)
	for i := 0; i < nOps; i++ {
		at := sim.Time(rng.Intn(12))
		if rng.Intn(2) == 0 {
			at += sim.Time(rng.Float64())
		}
		op := shardOp{at: at, kind: rng.Intn(6), flow: rng.Intn(nFlows), link: rng.Intn(len(sc.linkBW))}
		op.factor = 0.25 * float64(1+rng.Intn(3))
		sc.ops = append(sc.ops, op)
	}
	for i := 0; i < 4; i++ {
		sc.probes = append(sc.probes, sim.Time(i*3)+sim.Time(rng.Intn(2)))
	}
	return sc
}

// run replays the scenario and records all observables. pool sets the
// fill worker-pool width (ignored by the reference engine, which never
// fills in parallel).
func (sc shardScenario) run(reference bool, pool int) shardRecord {
	s := sim.NewScheduler()
	net := New(s)
	defer net.Close()
	if reference {
		net.useReferenceEngine()
	}
	if pool > 1 {
		net.SetFillParallel(pool)
	}
	net.EnableLinkTelemetry()
	net.SetCritPath(critpath.NewRecorder())
	a, b := net.AddNode("a"), net.AddNode("b")
	links := make([]LinkID, len(sc.linkBW))
	failed := make([]bool, len(sc.linkBW))
	for i := range links {
		links[i] = net.AddLink(a, b, sc.linkBW[i], sc.linkLat[i], "l")
	}
	rec := shardRecord{
		finishTimes: make([]sim.Time, len(sc.flowRoute)),
		stall:       make([]float64, len(sc.flowRoute)),
		bindLink:    make([]string, len(sc.flowRoute)),
	}
	for i := range rec.finishTimes {
		rec.finishTimes[i] = -1
	}
	flows := make([]*Flow, len(sc.flowRoute))
	for i := range sc.flowRoute {
		i := i
		route := make([]LinkID, len(sc.flowRoute[i]))
		for j, li := range sc.flowRoute[i] {
			route[j] = links[li]
		}
		s.At(sc.flowStart[i], func() {
			flows[i] = net.StartFlow(FlowSpec{
				Links: route, Bytes: sc.flowBytes[i], Latency: -1, Label: "f",
				Done: func(f *Flow) {
					rec.finishTimes[f.ID()] = s.Now()
					rec.finishOrder = append(rec.finishOrder, f.ID())
				},
				OnFail: func(f *Flow) {
					rec.failOrder = append(rec.failOrder, f.ID())
				},
			})
		})
	}
	for _, op := range sc.ops {
		op := op
		s.At(op.at, func() {
			switch op.kind {
			case 0, 1, 2:
				f := flows[op.flow]
				if f == nil {
					return
				}
				switch op.kind {
				case 0:
					f.Pause()
				case 1:
					f.Resume()
				case 2:
					f.Cancel()
				}
			case 3:
				if !failed[op.link] {
					net.Link(links[op.link]).Degrade(op.factor)
				}
			case 4:
				if !failed[op.link] {
					net.Link(links[op.link]).Restore()
				}
			case 5:
				if !failed[op.link] {
					failed[op.link] = true
					net.Link(links[op.link]).Fail()
				}
			}
		})
	}
	for _, at := range sc.probes {
		s.At(at, func() {
			for _, f := range flows {
				if f != nil {
					rec.rateSamples = append(rec.rateSamples, f.Rate())
				} else {
					rec.rateSamples = append(rec.rateSamples, -1)
				}
			}
		})
	}
	rec.endTime = s.RunUntil(1e6)
	for _, id := range links {
		rec.linkBytes = append(rec.linkBytes, net.Link(id).BytesCarried())
		rec.peakUtil = append(rec.peakUtil, net.Link(id).PeakUtil())
	}
	for i, f := range flows {
		if f != nil {
			rec.stall[i] = f.ContentionStall()
			rec.bindLink[i] = f.BindLinkName()
		}
	}
	rec.stats = net.FillStats()
	return rec
}

func compareShardRecords(t *testing.T, seed int64, name string, got, want shardRecord) {
	t.Helper()
	if got.endTime != want.endTime {
		t.Errorf("seed %d [%s]: end time %v != %v", seed, name, got.endTime, want.endTime)
	}
	if len(got.finishOrder) != len(want.finishOrder) {
		t.Fatalf("seed %d [%s]: %d finishes != %d", seed, name, len(got.finishOrder), len(want.finishOrder))
	}
	for i := range got.finishOrder {
		if got.finishOrder[i] != want.finishOrder[i] {
			t.Fatalf("seed %d [%s]: finish order %v != %v", seed, name, got.finishOrder, want.finishOrder)
		}
	}
	if len(got.failOrder) != len(want.failOrder) {
		t.Fatalf("seed %d [%s]: %d aborts != %d", seed, name, len(got.failOrder), len(want.failOrder))
	}
	for i := range got.failOrder {
		if got.failOrder[i] != want.failOrder[i] {
			t.Fatalf("seed %d [%s]: abort order %v != %v", seed, name, got.failOrder, want.failOrder)
		}
	}
	for id, ft := range got.finishTimes {
		if ft != want.finishTimes[id] {
			t.Errorf("seed %d [%s]: flow %d finished at %v != %v", seed, name, id, ft, want.finishTimes[id])
		}
	}
	for i := range got.rateSamples {
		if got.rateSamples[i] != want.rateSamples[i] {
			t.Errorf("seed %d [%s]: rate sample %d: %v != %v", seed, name, i, got.rateSamples[i], want.rateSamples[i])
		}
	}
	for i := range got.linkBytes {
		if got.linkBytes[i] != want.linkBytes[i] {
			t.Errorf("seed %d [%s]: link %d bytes %v != %v", seed, name, i, got.linkBytes[i], want.linkBytes[i])
		}
		if got.peakUtil[i] != want.peakUtil[i] {
			t.Errorf("seed %d [%s]: link %d peak util %v != %v", seed, name, i, got.peakUtil[i], want.peakUtil[i])
		}
	}
	for i := range got.stall {
		if got.stall[i] != want.stall[i] {
			t.Errorf("seed %d [%s]: flow %d stall %v != %v", seed, name, i, got.stall[i], want.stall[i])
		}
		if got.bindLink[i] != want.bindLink[i] {
			t.Errorf("seed %d [%s]: flow %d bind link %q != %q", seed, name, i, got.bindLink[i], want.bindLink[i])
		}
	}
}

// TestDifferentialShardedMultiDomain is the tentpole's property test:
// 50 seeded multi-group churn+fault scenarios — domain merges via
// bridge flows, partition resets, Degrade/Restore, failures — run on
// the sharded engine at pool widths 1 and 4 and on the reference
// oracle. Durations, orders, per-link bytes, telemetry and critpath
// blame must match the oracle exactly, and the two pool widths must
// additionally agree on the engine's FillStats work counters.
func TestDifferentialShardedMultiDomain(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sc := makeShardScenario(seed)
		ref := sc.run(true, 1)
		p1 := sc.run(false, 1)
		p4 := sc.run(false, 4)
		compareShardRecords(t, seed, "pool1 vs reference", p1, ref)
		compareShardRecords(t, seed, "pool4 vs pool1", p4, p1)
		if p4.stats != p1.stats {
			t.Errorf("seed %d: fill stats diverge across pool widths: %+v != %+v", seed, p4.stats, p1.stats)
		}
		if p1.stats.FlowsFilled == 0 && len(sc.flowRoute) > 0 {
			t.Errorf("seed %d: engine filled no flows — scenario exercised nothing", seed)
		}
	}
}

// TestDomainLazySkip pins the tentpole's core property: churn inside
// one contention domain refills only that domain. Two disjoint
// contended link sets host two flows each; a third flow arriving on
// the first set must refill exactly that domain's three flows, not all
// five.
func TestDomainLazySkip(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 0, "l1")
	l2 := net.AddLink(a, b, 100, 0, "l2")
	for i := 0; i < 2; i++ {
		net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
		net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	}
	s.RunUntil(0)
	st := net.FillStats()
	if st.DomainsFilled != 2 || st.FlowsFilled != 4 {
		t.Fatalf("initial fill: %+v, want 2 domains / 4 flows", st)
	}
	s.At(1, func() {
		net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
	})
	s.RunUntil(2)
	st = net.FillStats()
	if st.DomainsFilled != 3 {
		t.Errorf("after l1 arrival: %d domains filled, want 3 (l2's domain untouched)", st.DomainsFilled)
	}
	if st.FlowsFilled != 7 {
		t.Errorf("after l1 arrival: %d flows filled, want 7 (4 + the dirty domain's 3)", st.FlowsFilled)
	}
	rates := net.LinkRates()
	if rates[l1] != 100 || rates[l2] != 100 {
		t.Errorf("link rates %v, want 100 each", rates)
	}
}

// TestDomainMergeAndReset checks partition maintenance: a bridge flow
// merges two singleton domains into one (so later churn anywhere in
// the merged span refills it as a unit), and draining all flows resets
// the partition so fresh flows land in fresh singleton domains again.
func TestDomainMergeAndReset(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 0, "l1")
	l2 := net.AddLink(a, b, 50, 0, "l2")
	f1 := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
	f2 := net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	bridge := net.StartFlow(FlowSpec{Links: []LinkID{l1, l2}, Bytes: 1e9})
	s.RunUntil(0)
	st := net.FillStats()
	// One pass: the bridge unioned both links before the fill ran, so a
	// single (merged) domain with one exact component was filled.
	if st.FillPasses != 1 || st.DomainsFilled != 1 || st.ComponentsFilled != 1 || st.FlowsFilled != 3 {
		t.Fatalf("merged fill: %+v, want 1 pass / 1 domain / 1 component / 3 flows", st)
	}
	// Drain everything: the partition resets, so two new disjoint flows
	// form two fresh singleton domains (filled in one pass), even
	// though l1 and l2 were merged before.
	f1.Cancel()
	f2.Cancel()
	bridge.Cancel()
	s.RunUntil(1)
	s.At(2, func() {
		net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
		net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	})
	s.RunUntil(3)
	st = net.FillStats()
	if st.DomainsFilled != 4 {
		t.Errorf("after reset: %d domains filled cumulatively, want 4 (1 merged + 1 drain pass + 2 fresh)", st.DomainsFilled)
	}
	rates := net.LinkRates()
	if rates[l1] != 100 || rates[l2] != 50 {
		t.Errorf("post-reset rates %v, want l1=100, l2=50", rates)
	}
}

// TestDomainMergeStillExactComponents verifies the fill stays per
// *exact* component inside a coarse merged domain: after the bridge
// flow leaves, l1's and l2's flows are separate components again (the
// coarse domain still spans both links) and their rates match networks
// that never merged.
func TestDomainMergeStillExactComponents(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 0, "l1")
	l2 := net.AddLink(a, b, 60, 0, "l2")
	net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
	net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	bridge := net.StartFlow(FlowSpec{Links: []LinkID{l1, l2}, Bytes: 1e9})
	s.RunUntil(0)
	bridge.Cancel() // coarse domain keeps spanning l1+l2; components split
	s.RunUntil(1)
	st := net.FillStats()
	// Second pass refilled the one dirty coarse domain as two exact
	// components.
	if st.FillPasses != 2 || st.DomainsFilled != 2 || st.ComponentsFilled != 3 {
		t.Fatalf("post-split fill: %+v, want 2 passes / 2 domains / 3 components", st)
	}
	rates := net.LinkRates()
	if rates[l1] != 100 || rates[l2] != 60 {
		t.Errorf("post-split rates %v, want l1=100, l2=60", rates)
	}
}

// TestDegradeDirtiesOnlyItsDomain: a Degrade refills the degraded
// link's domain alone, and degrading a link no active route crosses
// refills nothing at all.
func TestDegradeDirtiesOnlyItsDomain(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 0, "l1")
	l2 := net.AddLink(a, b, 100, 0, "l2")
	idle := net.AddLink(a, b, 100, 0, "idle")
	f1 := net.StartFlow(FlowSpec{Links: []LinkID{l1}, Bytes: 1e9})
	net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	s.RunUntil(0)
	base := net.FillStats()
	s.At(1, func() { net.Link(l1).Degrade(0.5) })
	s.RunUntil(2)
	st := net.FillStats()
	if st.DomainsFilled != base.DomainsFilled+1 || st.FlowsFilled != base.FlowsFilled+1 {
		t.Errorf("degrade refilled %+v beyond %+v, want exactly 1 domain / 1 flow more", st, base)
	}
	if f1.Rate() != 50 {
		t.Errorf("degraded flow rate %v, want 50", f1.Rate())
	}
	s.At(3, func() { net.Link(idle).Degrade(0.5) })
	s.RunUntil(4)
	if got := net.FillStats(); got != st {
		t.Errorf("degrading an idle link changed fill work: %+v != %+v", got, st)
	}
}

// TestCrossDomainCompletionTie: flows in independent domains whose
// completions land on the same timestamp must finish in activation
// order on both engines — the calendar's cross-domain tie-break.
func TestCrossDomainCompletionTie(t *testing.T) {
	run := func(reference bool) []string {
		s := sim.NewScheduler()
		net := New(s)
		if reference {
			net.useReferenceEngine()
		}
		a, b := net.AddNode("a"), net.AddNode("b")
		var order []string
		for i, bw := range []float64{100, 50, 25, 200} {
			name := string(rune('A' + i))
			l := net.AddLink(a, b, bw, 0, name)
			net.StartFlow(FlowSpec{
				Links: []LinkID{l}, Bytes: bw * 3, // all finish at t=3
				Done: func(*Flow) { order = append(order, name) },
			})
		}
		s.RunUntil(10)
		return order
	}
	opt, ref := run(false), run(true)
	want := "ABCD"
	if len(opt) != 4 || len(ref) != 4 {
		t.Fatalf("completions: engine %v, reference %v", opt, ref)
	}
	for i := range opt {
		if opt[i] != ref[i] || opt[i] != string(want[i]) {
			t.Fatalf("tie order: engine %v, reference %v, want activation order %q", opt, ref, want)
		}
	}
}

// TestForceFullFillMatchesLazy: forcing a full fill over clean domains
// must be a pure no-op on every observable — same rates bitwise, and
// no completion re-arming (kept ETAs) — while still counting the work.
func TestForceFullFillMatchesLazy(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	l1 := net.AddLink(a, b, 100, 0, "l1")
	l2 := net.AddLink(a, b, 70, 0, "l2")
	f1 := net.StartFlow(FlowSpec{Links: []LinkID{l1, l2}, Bytes: 1e9})
	f2 := net.StartFlow(FlowSpec{Links: []LinkID{l2}, Bytes: 1e9})
	s.RunUntil(1)
	r1, r2 := f1.Rate(), f2.Rate()
	fired := s.Fired()
	net.ForceFullFill()
	s.RunUntil(2)
	if f1.Rate() != r1 || f2.Rate() != r2 {
		t.Errorf("forced refill moved rates: (%v,%v) != (%v,%v)", f1.Rate(), f2.Rate(), r1, r2)
	}
	if got := net.FillStats(); got.FlowsFilled < 4 {
		t.Errorf("forced refill counted %d flow fills, want ≥ 4", got.FlowsFilled)
	}
	_ = fired
	if r1+r2 != 70 || r1 != 35 {
		t.Errorf("max-min rates (%v,%v), want (35,35)", r1, r2)
	}
}

// TestSetFillParallelValidation: width must be ≥ 1, and Close leaves
// the network usable sequentially.
func TestSetFillParallelValidation(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetFillParallel(0) did not panic")
			}
		}()
		net.SetFillParallel(0)
	}()
	net.SetFillParallel(4)
	if got := net.FillParallel(); got != 4 {
		t.Errorf("FillParallel() = %d, want 4", got)
	}
	net.Close()
	if got := net.FillParallel(); got != 1 {
		t.Errorf("FillParallel() after Close = %d, want 1", got)
	}
	a, b := net.AddNode("a"), net.AddNode("b")
	l := net.AddLink(a, b, 100, 0, "l")
	f := net.StartFlow(FlowSpec{Links: []LinkID{l}, Bytes: 100})
	s.Run()
	if f.State() != FlowDone || f.Finished() != 1 {
		t.Errorf("flow after Close: state %v at %v, want done at 1", f.State(), f.Finished())
	}
	if math.IsNaN(f.Rate()) {
		t.Error("rate is NaN")
	}
}

// TestChurnDifferentialParallelPool replays the original churn
// scenarios (differential_test.go) with a width-4 pool, pinning pool
// independence on the pause/resume/cancel/chain paths too.
func TestChurnDifferentialParallelPool(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sc := makeScenario(seed)
		p1 := sc.run(false)
		p4 := sc.runParallel(4)
		if p1.endTime != p4.endTime {
			t.Errorf("seed %d: end time %v != %v at pool 4", seed, p1.endTime, p4.endTime)
		}
		for i := range p1.finishOrder {
			if i >= len(p4.finishOrder) || p1.finishOrder[i] != p4.finishOrder[i] {
				t.Fatalf("seed %d: finish order %v != %v at pool 4", seed, p1.finishOrder, p4.finishOrder)
			}
		}
		for i := range p1.rateSamples {
			if p1.rateSamples[i] != p4.rateSamples[i] {
				t.Errorf("seed %d: rate sample %d: %v != %v at pool 4", seed, i, p1.rateSamples[i], p4.rateSamples[i])
			}
		}
		for i := range p1.linkBytes {
			if p1.linkBytes[i] != p4.linkBytes[i] {
				t.Errorf("seed %d: link %d bytes %v != %v at pool 4", seed, i, p1.linkBytes[i], p4.linkBytes[i])
			}
		}
	}
}
