package netsim

// Route pre-resolution: the schedule compiler (internal/collective)
// replays the same routes thousands of times per training run, and the
// per-StartFlow work of deduplicating the link list, filtering the
// finite-bandwidth subset and summing the cut-through latency is pure
// in the route and the network's static link table. PrepareRoute does
// that work once; a FlowSpec carrying the result skips it entirely.
//
// A PreparedRoute is immutable after construction and safe to share
// across any number of flows of the same network: flows only ever read
// their link slices (a reroute replaces them wholesale), so aliasing
// one backing array is free. It is NOT safe to carry across networks —
// it holds *Link pointers — and a cache holding prepared routes must
// key on Network.StateEpoch so fabric mutations invalidate it.

// PreparedRoute is a route resolved once against a network: the
// deduplicated link set, its finite-bandwidth subset, and the summed
// cut-through latency of the raw route (duplicates included, exactly
// as StartFlow computes it for a negative FlowSpec.Latency).
type PreparedRoute struct {
	net     *Network
	links   []*Link
	finite  []*Link
	latency float64
}

// PrepareRoute resolves a route for reuse. The returned value produces
// flows bit-identical to passing the same route through FlowSpec.Links:
// the deduplication, finite-subset filtering and latency summation are
// the very code StartFlow runs.
func (n *Network) PrepareRoute(route []LinkID) *PreparedRoute {
	links, finite := n.resolveRoute(route)
	lat := 0.0
	for _, id := range route {
		lat += n.links[id].Latency
	}
	return &PreparedRoute{net: n, links: links, finite: finite, latency: lat}
}

// Latency returns the prepared route's cut-through latency — the sum
// of link latencies over the raw route, duplicates included.
func (p *PreparedRoute) Latency() float64 { return p.latency }

// Hops returns the number of distinct links on the prepared route.
func (p *PreparedRoute) Hops() int { return len(p.links) }

// StateEpoch returns the network's fabric-state epoch: a counter
// bumped by every Link.Fail, Link.Degrade and Link.Restore (FailNode
// bumps once per link it fails). Schedule caches include it in their
// keys, so any fabric mutation retires exactly the entries planned
// against the old state — replay never resurrects a stale route.
func (n *Network) StateEpoch() uint64 { return n.stateEpoch }
