package netsim

import (
	"fmt"
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

// Benchmarks for the waterfilling engine hot paths. The *Reference
// variants run the original cancel-everything map-based implementation
// (reference.go) on identical topologies, so a single run produces the
// before/after comparison recorded in BENCH_netsim.json:
//
//	go test -run '^$' -bench 'Recompute|FlowChurn' -benchmem ./internal/netsim

// contendedNet builds a 16-link network with nFlows long-lived flows,
// each crossing three links in a deterministic pattern, activated and
// rate-filled at t=0.
func contendedNet(tb testing.TB, reference bool, nFlows int) (*sim.Scheduler, *Network) {
	s := sim.NewScheduler()
	net := New(s)
	if reference {
		net.useReferenceEngine()
	}
	a, b := net.AddNode("a"), net.AddNode("b")
	links := make([]LinkID, 16)
	for i := range links {
		links[i] = net.AddLink(a, b, 100+float64(i*7), 0, "l")
	}
	for i := 0; i < nFlows; i++ {
		net.StartFlow(FlowSpec{
			Links: []LinkID{links[i%16], links[(i+5)%16], links[(i+11)%16]},
			Bytes: 1e15, Latency: 0,
		})
	}
	s.RunUntil(0)
	if net.ActiveFlows() != nFlows {
		tb.Fatalf("active = %d, want %d", net.ActiveFlows(), nFlows)
	}
	return s, net
}

// BenchmarkRecompute measures one full rate recomputation — settle,
// progressive filling over 128 contending flows, completion re-timing
// — in the steady state the training drivers spend most of their time
// in. The filling pass is forced each iteration; allocs/op must be 0.
func BenchmarkRecompute(b *testing.B) {
	_, net := contendedNet(b, false, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForceFullFill()
	}
}

// BenchmarkRecomputeReference is the original engine on the identical
// scenario: fresh scratch maps and cancel-and-recreate completion
// events every pass.
func BenchmarkRecomputeReference(b *testing.B) {
	_, net := contendedNet(b, true, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.referenceRecompute()
	}
}

// flowChurn measures the full lifecycle of one short flow — start,
// activate, rate refill, completion, detach — against a backdrop of 64
// long-lived contending flows, the dominant event pattern of the
// collective schedules.
func flowChurn(b *testing.B, reference bool) {
	s, net := contendedNet(b, reference, 64)
	links := []LinkID{0, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		net.StartFlow(FlowSpec{
			Links: links, Bytes: 1000, Latency: 0,
			Done: func(*Flow) { done = true },
		})
		for !done && s.Step() {
		}
	}
}

func BenchmarkFlowChurn(b *testing.B)          { flowChurn(b, false) }
func BenchmarkFlowChurnReference(b *testing.B) { flowChurn(b, true) }

// groupedNet builds `groups` disjoint copies of the contendedNet
// pattern — 16 links, flowsPer flows each crossing three of them — so
// the network partitions into exactly `groups` independent contention
// domains, the structure a hierarchical multi-wafer system produces by
// construction.
func groupedNet(tb testing.TB, groups, flowsPer int) (*sim.Scheduler, *Network, []LinkID) {
	s := sim.NewScheduler()
	net := New(s)
	a, b := net.AddNode("a"), net.AddNode("b")
	links := make([]LinkID, 16*groups)
	for i := range links {
		links[i] = net.AddLink(a, b, 100+float64(i%16*7), 0, "l")
	}
	for g := 0; g < groups; g++ {
		base := g * 16
		for i := 0; i < flowsPer; i++ {
			net.StartFlow(FlowSpec{
				Links: []LinkID{links[base+i%16], links[base+(i+5)%16], links[base+(i+11)%16]},
				Bytes: 1e15, Latency: 0,
			})
		}
	}
	s.RunUntil(0)
	if net.ActiveFlows() != groups*flowsPer {
		tb.Fatalf("active = %d, want %d", net.ActiveFlows(), groups*flowsPer)
	}
	return s, net, links
}

// BenchmarkDomainFill measures the sharded engine on multi-domain
// systems. dirty1 is the tentpole's payoff: localized churn (a
// Degrade/Restore cycle on one link) refills only that link's domain,
// so its cost must stay flat — and allocation-free — as the total
// system grows; a global engine's cost would grow linearly with
// groups. global forces every domain dirty for the full-system
// baseline, and parallel4 is the same full fill on a width-4 worker
// pool. 32 flows per 16-link group throughout.
func BenchmarkDomainFill(b *testing.B) {
	for _, groups := range []int{1, 4, 16} {
		groups := groups
		b.Run(fmt.Sprintf("dirty1/groups=%d", groups), func(b *testing.B) {
			_, net, links := groupedNet(b, groups, 32)
			l := net.Link(links[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					l.Degrade(0.5)
				} else {
					l.Restore()
				}
				net.recompute()
			}
		})
		b.Run(fmt.Sprintf("global/groups=%d", groups), func(b *testing.B) {
			_, net, _ := groupedNet(b, groups, 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForceFullFill()
			}
		})
	}
	b.Run("parallel4/groups=16", func(b *testing.B) {
		_, net, _ := groupedNet(b, 16, 32)
		net.SetFillParallel(4)
		defer net.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.ForceFullFill()
		}
	})
}
