package netsim

// Contention-domain sharding for the waterfilling engine.
//
// The global progressive-filling pass of the original engine touched
// every active flow and every finite link on each recompute. That is
// wasted work whenever the network decomposes into independent
// contention domains — disjoint sets of links never bridged by a
// flow's route — because max-min rates are a pure function of each
// connected component in isolation: churn in one domain cannot move a
// single bit of any other domain's rates.
//
// This file maintains that decomposition incrementally:
//
//   - A union-find partition over finite links, unioned along every
//     activating flow's route. Domains only merge between resets (a
//     detaching flow does not split its domain — splitting eagerly
//     would cost more than the coarseness it saves), so the partition
//     is a conservative over-approximation of the true connectivity.
//     When the last finite-link flow leaves the network the whole
//     partition resets in O(1) by bumping a version stamp.
//   - Per-domain dirty bits replacing the engine's former global
//     fillNeeded flag: flow attach/detach and link Degrade/Restore
//     mark only the affected domain's root, and a recompute fills
//     dirty domains only. Clean domains are a per-domain no-op — their
//     flows keep rates, completion times and telemetry untouched.
//   - Exact connected components rediscovered inside each dirty domain
//     per pass (a second, epoch-stamped union-find). The fill runs per
//     exact component, never per coarse domain, which is what makes
//     lazy skipping bit-identical to the reference oracle: a
//     per-component fill does not interleave its float delta sequence
//     with unrelated components the way one global pass would.
//   - A completion calendar (indexed min-heap keyed by (eta, arming
//     pass, activation seq)) drained by a single proxy scheduler
//     event, so re-arming completions is O(refilled flows), not
//     O(active flows). The key reproduces exactly the (time,
//     insertion-seq) tie-break a cancel-and-recreate implementation
//     produces: within one recompute the reference arms events in
//     activation order, and across recomputes older arming passes hold
//     older sequences.
//
// Independent dirty domains fill in parallel on a bounded sim.Pool
// (SetFillParallel). Every write inside a domain fill is domain-local
// (per-flow rates, per-link epoch scratch, disjoint rate-sum slots),
// and the merge back into shared state — stats, completion arming,
// proxy re-arm — runs sequentially in deterministic domain order, so
// output is byte-identical at every pool size. See DESIGN.md
// ("Sharded rate engine") for the invariants and determinism argument.

import (
	"fmt"
	"math"
	"slices"

	"github.com/wafernet/fred/internal/sim"
)

// FillStats counts the work the sharded rate engine has performed.
// All counters are deterministic for a deterministic run (no
// wall-clock), so studies can report them as reproducible cost proxies.
type FillStats struct {
	// Recomputes is the number of rate recomputations (settle +
	// dirty-domain resolution), whether or not any domain needed
	// filling.
	Recomputes uint64
	// FillPasses counts recomputes that filled at least one domain.
	FillPasses uint64
	// DomainsFilled counts dirty coarse domains processed, summed over
	// all passes.
	DomainsFilled uint64
	// ComponentsFilled counts exact connected components refilled.
	ComponentsFilled uint64
	// FlowsFilled counts per-flow rate assignments, summed over all
	// passes — the engine's total fill work. A global engine would
	// perform ActiveFlows assignments per pass.
	FlowsFilled uint64
}

// FillStats returns the engine's cumulative work counters.
func (n *Network) FillStats() FillStats { return n.stats }

// ForceFullFill marks every contention domain dirty and synchronously
// runs a full rate recomputation — the exported test hook replacing
// direct pokes at private fill state (benchmarks and differential
// tests previously set fillNeeded by hand). Production code never
// needs it: the per-domain dirty bits already cover every path that
// can change a rate.
func (n *Network) ForceFullFill() {
	n.allDirty = true
	n.recomputeFn()
}

// SetFillParallel sets the worker-pool width used to fill independent
// dirty domains concurrently. Width 1 (the default) runs sequentially
// with no goroutines. Output is byte-identical at every width; only
// wall-clock time changes. Call it before starting flows; a pool
// created here owns goroutines until Close.
func (n *Network) SetFillParallel(workers int) {
	if workers < 1 {
		panic(fmt.Sprintf("netsim: fill parallelism %d must be ≥ 1", workers))
	}
	if n.fillPool != nil {
		n.fillPool.Close()
		n.fillPool = nil
	}
	if workers > 1 {
		n.fillPool = sim.NewPool(workers)
	}
	n.fillScratch = make([]*fillScratch, workers)
	for i := range n.fillScratch {
		n.fillScratch[i] = &fillScratch{}
	}
	n.fillDomainFn = n.fillDomain
}

// FillParallel reports the configured fill worker-pool width.
func (n *Network) FillParallel() int {
	if len(n.fillScratch) == 0 {
		return 1
	}
	return len(n.fillScratch)
}

// Close releases the fill worker pool's goroutines, if any. The
// network remains usable (fills fall back to sequential).
func (n *Network) Close() {
	if n.fillPool != nil {
		n.fillPool.Close()
		n.fillPool = nil
		n.fillScratch = []*fillScratch{{}}
	}
}

// fillScratch is the per-worker reusable state of one domain fill, so
// concurrent domain fills never share scratch and the steady state
// performs no allocation.
type fillScratch struct {
	flows   []*Flow // the domain's flows, sorted by activation seq
	comps   []*Link // exact-component roots, in first-flow order
	touched []*Link // links touched by the current component fill
}

// domainFillResult carries one domain fill's counters back from a
// (possibly parallel) worker, merged sequentially by job index.
type domainFillResult struct {
	components int
	flows      int
}

// ---------------------------------------------------------------------
// Coarse partition: union-find over finite links.
// ---------------------------------------------------------------------

// domEnsure initializes l's partition state for the current partition
// version, making it a singleton domain. Stale state from before a
// version reset is overwritten lazily — the reset itself is O(1).
func (n *Network) domEnsure(l *Link) {
	if l.domVersion == n.partVersion {
		return
	}
	l.domVersion = n.partVersion
	l.domParent = l
	l.domSize = 1
	l.domDirty = false
	l.domSeen = 0
	l.domNext = nil
	l.domLinkHead, l.domLinkTail = l, l
	l.domFlowHead, l.domFlowTail = nil, nil
}

// domFind returns the root of l's domain, with path halving. l must be
// current-version. Not safe to call concurrently (path compression
// mutates parents), so workers never call it: they only walk the
// link/flow lists hanging off roots resolved beforehand.
func domFind(l *Link) *Link {
	for l.domParent != l {
		l.domParent = l.domParent.domParent
		l = l.domParent
	}
	return l
}

// domUnion merges the domains rooted at a and b and returns the merged
// root. Link and flow membership lists concatenate in O(1).
func domUnion(a, b *Link) *Link {
	if a == b {
		return a
	}
	if a.domSize < b.domSize {
		a, b = b, a
	}
	b.domParent = a
	a.domSize += b.domSize
	a.domLinkTail.domNext = b.domLinkHead
	a.domLinkTail = b.domLinkTail
	if b.domFlowHead != nil {
		if a.domFlowTail == nil {
			a.domFlowHead, a.domFlowTail = b.domFlowHead, b.domFlowTail
		} else {
			a.domFlowTail.domNext = b.domFlowHead
			b.domFlowHead.domPrev = a.domFlowTail
			a.domFlowTail = b.domFlowTail
		}
	}
	// A dirty absorbed root stays queued in dirtyRoots; flagging the
	// merged root keeps markDomainDirty from double-queueing it, and
	// collectDirtyDomains resolves the stale entry to the merged root.
	if b.domDirty && !a.domDirty {
		a.domDirty = true
	}
	return a
}

// domAttach joins an activating flow to the partition: its route's
// finite links union into one domain, the flow enters that domain's
// membership list, and the domain is marked dirty.
func (n *Network) domAttach(f *Flow) {
	ls := f.finiteLinks
	n.domEnsure(ls[0])
	root := domFind(ls[0])
	for _, l := range ls[1:] {
		n.domEnsure(l)
		root = domUnion(root, domFind(l))
	}
	f.domPrev = root.domFlowTail
	f.domNext = nil
	if root.domFlowTail == nil {
		root.domFlowHead = f
	} else {
		root.domFlowTail.domNext = f
	}
	root.domFlowTail = f
	f.inDom = true
	n.partActive++
	n.markDomainDirty(root)
}

// domDetach removes a detaching flow from its domain's membership list
// (O(1), doubly linked) and marks the domain dirty — the surviving
// flows' shares change. The domain itself is not split: membership of
// links is conservative until the O(1) whole-partition reset.
func (n *Network) domDetach(f *Flow) {
	if !f.inDom {
		return
	}
	root := domFind(f.finiteLinks[0])
	if f.domPrev != nil {
		f.domPrev.domNext = f.domNext
	} else {
		root.domFlowHead = f.domNext
	}
	if f.domNext != nil {
		f.domNext.domPrev = f.domPrev
	} else {
		root.domFlowTail = f.domPrev
	}
	f.domPrev, f.domNext = nil, nil
	f.inDom = false
	n.partActive--
	n.markDomainDirty(root)
}

// markDomainDirty queues a domain root for the next recompute's fill.
// Idempotent per root; absorbed roots resolve via find at collection.
func (n *Network) markDomainDirty(root *Link) {
	if root.domDirty {
		return
	}
	root.domDirty = true
	n.dirtyRoots = append(n.dirtyRoots, root)
}

// domRootOf returns the current domain root of l, or nil when no
// active flow's route has touched l this partition version — then no
// rate can depend on l and its mutation needs no refill.
func (n *Network) domRootOf(l *Link) *Link {
	if l.domVersion != n.partVersion {
		return nil
	}
	return domFind(l)
}

// collectDirtyDomains resolves the queued dirty roots (and, under
// ForceFullFill, every live domain) into the deduplicated procRoots
// work list, clearing the dirty queue. Runs sequentially before the
// parallel fill phase — find's path compression is not thread-safe.
func (n *Network) collectDirtyDomains() {
	n.seenEpoch++
	seen := n.seenEpoch
	n.procRoots = n.procRoots[:0]
	if n.allDirty {
		n.allDirty = false
		for _, f := range n.active {
			if len(f.finiteLinks) == 0 {
				continue
			}
			r := domFind(f.finiteLinks[0])
			if r.domSeen != seen {
				r.domSeen = seen
				n.procRoots = append(n.procRoots, r)
			}
		}
	}
	for _, l := range n.dirtyRoots {
		if l.domVersion != n.partVersion {
			continue // queued before a partition reset
		}
		r := domFind(l)
		if r.domSeen != seen {
			r.domSeen = seen
			n.procRoots = append(n.procRoots, r)
		}
		l.domDirty = false
	}
	for _, r := range n.procRoots {
		r.domDirty = false
	}
	n.dirtyRoots = n.dirtyRoots[:0]
}

// ---------------------------------------------------------------------
// Per-domain fill: exact components, then per-component waterfilling.
// ---------------------------------------------------------------------

// compFind / compUnion are the per-pass exact-component union-find,
// epoch-stamped into the links like the fill scratch. Confined to one
// domain, so concurrent domain fills never touch the same links.
func compFind(l *Link) *Link {
	for l.compParent != l {
		l.compParent = l.compParent.compParent
		l = l.compParent
	}
	return l
}

func compUnion(a, b *Link) *Link {
	if a == b {
		return a
	}
	if a.compRank < b.compRank {
		a, b = b, a
	}
	b.compParent = a
	if a.compRank == b.compRank {
		a.compRank++
	}
	return a
}

// fillDomain refills one dirty domain: collect its flows in activation
// order, rediscover exact connected components, waterfill each
// component independently, and refresh the domain's per-link rate
// sums. All writes are domain-local, so domains fill concurrently on
// the worker pool with bit-identical results at any pool width.
func (n *Network) fillDomain(worker, job int) {
	root := n.procRoots[job]
	sc := n.fillScratch[worker]
	flows := sc.flows[:0]
	sorted := true
	var prev uint64
	for f := root.domFlowHead; f != nil; f = f.domNext {
		if len(flows) > 0 && f.actSeq < prev {
			sorted = false
		}
		prev = f.actSeq
		flows = append(flows, f)
	}
	if !sorted {
		// Domain merges concatenate membership lists out of activation
		// order; restore it — the fill's float accumulation and the
		// telemetry sums below are defined over activation order.
		slices.SortFunc(flows, func(a, b *Flow) int {
			switch {
			case a.actSeq < b.actSeq:
				return -1
			case a.actSeq > b.actSeq:
				return 1
			}
			return 0
		})
	}
	sc.flows = flows
	if len(flows) == 0 {
		// Every flow left: the domain's links carry nothing any more.
		for l := root.domLinkHead; l != nil; l = l.domNext {
			n.rateSum[l.ID] = 0
		}
		n.procStats[job] = domainFillResult{}
		return
	}
	epoch := n.fillEpoch
	for _, f := range flows {
		first := f.finiteLinks[0]
		if first.compEpoch != epoch {
			first.compEpoch = epoch
			first.compParent = first
			first.compRank = 0
		}
		r := compFind(first)
		for _, l := range f.finiteLinks[1:] {
			if l.compEpoch != epoch {
				l.compEpoch = epoch
				l.compParent = l
				l.compRank = 0
			}
			r = compUnion(r, compFind(l))
		}
	}
	comps := sc.comps[:0]
	for _, f := range flows {
		r := compFind(f.finiteLinks[0])
		if r.compSeen != epoch {
			r.compSeen = epoch
			r.compHead, r.compTail = f, f
			comps = append(comps, r)
		} else {
			r.compTail.compNext = f
			r.compTail = f
		}
		f.compNext = nil
	}
	sc.comps = comps
	filled := 0
	for _, c := range comps {
		filled += n.fillComponent(c, sc)
	}
	// Per-link rate sums (telemetry/metrics/traces read them): zero the
	// domain's links — including ones whose flows all departed — then
	// accumulate in activation order, the same order the reference's
	// full pass uses, so the float sums match bit-for-bit.
	for l := root.domLinkHead; l != nil; l = l.domNext {
		n.rateSum[l.ID] = 0
	}
	for _, f := range flows {
		for _, l := range f.finiteLinks {
			n.rateSum[l.ID] += f.rate
		}
	}
	n.procStats[job] = domainFillResult{components: len(comps), flows: filled}
}

// fillComponent runs one progressive-filling pass over a single exact
// connected component (flows linked through compNext in activation
// order). The arithmetic — delta selection, rate accumulation order,
// residual updates, the saturation epsilon — is operation-for-operation
// identical to the reference per-component fill, keeping rates
// bit-exact. Returns the number of flows filled.
func (n *Network) fillComponent(comp *Link, sc *fillScratch) int {
	epoch := n.fillEpoch
	touched := sc.touched[:0]
	unfrozenCount := 0
	count := 0
	for f := comp.compHead; f != nil; f = f.compNext {
		f.rate = 0
		f.fillFrozen = false
		for _, l := range f.finiteLinks {
			if l.fillEpoch != epoch {
				l.fillEpoch = epoch
				l.residual = l.Bandwidth
				l.unfrozen = 0
				touched = append(touched, l)
			}
			l.unfrozen++
		}
		unfrozenCount++
		count++
	}
	for unfrozenCount > 0 {
		delta := math.Inf(1)
		for _, l := range touched {
			if l.unfrozen == 0 {
				continue
			}
			if d := l.residual / float64(l.unfrozen); d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) {
			// Unreachable while every component flow keeps at least one
			// finite link (guaranteed by construction: only flows with
			// finite links join domains), but guard against a future
			// edit turning this loop into a spin.
			for f := comp.compHead; f != nil; f = f.compNext {
				if !f.fillFrozen {
					f.rate = math.Inf(1)
					f.fillFrozen = true
					unfrozenCount--
				}
			}
			break
		}
		for f := comp.compHead; f != nil; f = f.compNext {
			if !f.fillFrozen {
				f.rate += delta
			}
		}
		for _, l := range touched {
			if l.unfrozen > 0 {
				l.residual -= delta * float64(l.unfrozen)
			}
		}
		for f := comp.compHead; f != nil; f = f.compNext {
			if f.fillFrozen {
				continue
			}
			for _, l := range f.finiteLinks {
				if l.residual <= rateEpsilon*l.Bandwidth {
					f.fillFrozen = true
					unfrozenCount--
					if n.crit != nil {
						f.bindLink = l
					}
					break
				}
			}
		}
		for _, l := range touched {
			l.unfrozen = 0
		}
		for f := comp.compHead; f != nil; f = f.compNext {
			if f.fillFrozen {
				continue
			}
			for _, l := range f.finiteLinks {
				l.unfrozen++
			}
		}
	}
	sc.touched = touched
	return count
}

// ---------------------------------------------------------------------
// Completion calendar: one proxy event for all flow completions.
// ---------------------------------------------------------------------

// calLess orders the calendar by (eta, arming pass, activation seq) —
// exactly the (time, insertion-seq) order per-flow cancel-and-recreate
// events would produce: the reference arms, at each recompute, the
// flows whose rate changed, in activation order, so a flow armed at an
// earlier pass holds an earlier sequence, and within one pass
// activation order decides. actSeq is unique, making the order total
// and the heap's pop sequence independent of its internal layout.
func calLess(a, b *Flow) bool {
	if a.eta != b.eta {
		return a.eta < b.eta
	}
	if a.etaPass != b.etaPass {
		return a.etaPass < b.etaPass
	}
	return a.actSeq < b.actSeq
}

func (n *Network) calUp(i int) {
	cal := n.cal
	f := cal[i]
	for i > 0 {
		p := (i - 1) / 2
		if !calLess(f, cal[p]) {
			break
		}
		cal[i] = cal[p]
		cal[i].calIdx = i
		i = p
	}
	cal[i] = f
	f.calIdx = i
}

func (n *Network) calDown(i int) {
	cal := n.cal
	f := cal[i]
	for {
		c := 2*i + 1
		if c >= len(cal) {
			break
		}
		if r := c + 1; r < len(cal) && calLess(cal[r], cal[c]) {
			c = r
		}
		if !calLess(cal[c], f) {
			break
		}
		cal[i] = cal[c]
		cal[i].calIdx = i
		i = c
	}
	cal[i] = f
	f.calIdx = i
}

// calUpsert inserts the flow at its (re)computed key, or restores heap
// order in place if it is already queued.
func (n *Network) calUpsert(f *Flow) {
	if f.calIdx >= 0 {
		n.calUp(f.calIdx)
		n.calDown(f.calIdx)
		return
	}
	n.cal = append(n.cal, f)
	n.calUp(len(n.cal) - 1)
}

// calRemove drops the flow from the calendar; a no-op if absent.
func (n *Network) calRemove(f *Flow) {
	i := f.calIdx
	if i < 0 {
		return
	}
	last := len(n.cal) - 1
	moved := n.cal[last]
	n.cal[last] = nil
	n.cal = n.cal[:last]
	f.calIdx = -1
	if i < last {
		n.cal[i] = moved
		moved.calIdx = i
		n.calDown(i)
		n.calUp(i)
	}
}

// armFlow re-times a refilled flow's completion. The ETA is derived
// only when the rate actually changed bitwise (or the flow newly
// activated); an unchanged rate keeps the previously armed ETA and
// calendar key, which is what lets clean domains skip re-arming
// entirely while matching the reference oracle bit-for-bit.
func (n *Network) armFlow(f *Flow, now sim.Time) {
	if f.rate <= 0 {
		// Starved flow (transient only); re-armed on the next refill.
		n.calRemove(f)
		f.etaValid = false
		return
	}
	if f.etaValid && f.rate == f.etaRate {
		return
	}
	if math.IsInf(f.rate, 1) {
		f.eta = now
	} else {
		f.eta = now + f.remaining/f.rate
	}
	f.etaRate = f.rate
	f.etaPass = n.armPass
	f.etaValid = true
	n.calUpsert(f)
}

// armProxy re-times the single proxy event onto the calendar's
// earliest entry (canceling it when the calendar is empty). A fresh
// insertion sequence per re-arm is fine: completions order among
// themselves by calendar key, and the proxy always drains every
// completion due at its timestamp before the recompute that follows.
func (n *Network) armProxy() {
	if len(n.cal) == 0 {
		if n.proxy != nil {
			n.sched.Cancel(n.proxy)
		}
		return
	}
	top := n.cal[0]
	if n.proxy == nil {
		n.proxy = n.sched.At(top.eta, n.fireCompletions)
	} else {
		n.sched.Reschedule(n.proxy, top.eta)
	}
}

// fireCompletions is the proxy's callback: it drains every calendar
// entry due at the current time in calendar order — all of them,
// before the recompute their finishes schedule, exactly as per-flow
// events with pre-recompute sequences would fire — then re-arms the
// proxy for the next horizon. Spurious wakeups (the earliest entry was
// removed after the proxy was armed) drain nothing and re-arm.
func (n *Network) fireCompletions() {
	now := n.sched.Now()
	for len(n.cal) > 0 && n.cal[0].eta <= now {
		f := n.cal[0]
		n.calRemove(f)
		if f.state == FlowActive {
			n.finish(f)
		}
	}
	n.armProxy()
}
