package netsim

import (
	"strings"
	"testing"

	"github.com/wafernet/fred/internal/metrics"
	"github.com/wafernet/fred/internal/sim"
)

// A single 1000-byte flow on a 100 B/s link is busy (util 1.0) over
// [0,10) and idle over the trailing [10,15); the time-weighted
// histogram must carry both intervals once FlushMetrics closes the
// tail.
func TestLinkUtilHistogram(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	net.StartFlow(FlowSpec{Links: links, Bytes: 1000, Latency: 0})
	s.At(15, func() {}) // extend the horizon past completion
	s.Run()
	net.FlushMetrics()

	h := reg.Lookup("link/l/util")
	if h == nil {
		t.Fatal("no utilization histogram registered for the link")
	}
	if got := h.Count(); !approx(got, 15) {
		t.Fatalf("total weighted time = %g, want the 15s horizon", got)
	}
	if got := h.Mean(); !approx(got, 10.0/15) {
		t.Fatalf("time-weighted mean util = %g, want 2/3", got)
	}
	if h.Min() != 0 || h.Max() != 1 {
		t.Fatalf("min/max util = %g/%g, want 0/1", h.Min(), h.Max())
	}
	// 10 of 15 seconds at full utilization: p50 and p95 both land in
	// the saturated bucket.
	if got := h.Quantile(0.95); !approx(got, 1) {
		t.Fatalf("p95 util = %g, want 1", got)
	}

	for name, want := range map[string]float64{
		"net/flows_started":   1,
		"net/flows_completed": 1,
		"net/bytes_delivered": 1000,
	} {
		sres := reg.Lookup(name)
		if sres == nil || sres.Value() != want {
			t.Fatalf("%s = %v, want %g", name, sres, want)
		}
	}

	// A second flush with no elapsed time must not re-charge the tail.
	net.FlushMetrics()
	if got := h.Count(); !approx(got, 15) {
		t.Fatalf("idempotent flush changed total weight to %g", got)
	}
}

// Two flows sharing a bottleneck: the downstream link runs at half
// rate while both are active, then full rate — the distribution must
// separate the p50 from the max.
func TestLinkUtilDistributionFractional(t *testing.T) {
	s := sim.NewScheduler()
	net := New(s)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	l0 := net.AddLink(a, b, 100, 0, "shared")
	l1 := net.AddLink(b, c, 100, 0, "down")
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	// Long flow across both links; short flow contends on the shared
	// link. Fair share: both get 50 B/s until the short one finishes
	// at t=10, then the long one runs at 100 B/s.
	net.StartFlow(FlowSpec{Links: []LinkID{l0, l1}, Bytes: 1000, Latency: 0})
	net.StartFlow(FlowSpec{Links: []LinkID{l0}, Bytes: 500, Latency: 0})
	s.Run()
	net.FlushMetrics()

	h := reg.Lookup("link/down/util")
	if h == nil {
		t.Fatal("no histogram for the downstream link")
	}
	// Long flow: 500 bytes by t=10, remaining 500 at 100 B/s → done
	// t=15. Downstream util: 0.5 over [0,10), 1.0 over [10,15).
	if got := h.Count(); !approx(got, 15) {
		t.Fatalf("downstream weighted time = %g, want 15", got)
	}
	if got := h.Mean(); !approx(got, (0.5*10+1.0*5)/15) {
		t.Fatalf("downstream mean util = %g, want 2/3", got)
	}
	// p50 falls in the 0.5 interval (10 of 15 seconds); the estimator
	// returns that bucket's upper bound, strictly below the max.
	p50, p95 := h.Quantile(0.50), h.Quantile(0.95)
	if p50 >= 1 || p50 < 0.5 {
		t.Fatalf("p50 = %g, want in [0.5, 1)", p50)
	}
	if !approx(p95, 1) {
		t.Fatalf("p95 = %g, want 1", p95)
	}

	// TopLinks surfaces the distribution on its rows.
	top := net.TopLinks(0)
	for _, u := range top {
		if !u.HasDist {
			t.Fatalf("link %q has no distribution despite SetMetrics", u.Name)
		}
	}
	if top[0].Name != "shared" {
		t.Fatalf("hottest link %q, want shared", top[0].Name)
	}
	if got := top[1].P95Util; !approx(got, 1) {
		t.Fatalf("downstream row p95 = %g, want 1", got)
	}
	if got := top[1].P50Util; got >= 1 {
		t.Fatalf("downstream row p50 = %g, want < 1", got)
	}
}

// Without SetMetrics the LinkUsage rows carry no distribution and no
// series appear anywhere.
func TestTopLinksWithoutMetrics(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: 0})
	s.Run()
	for _, u := range net.TopLinks(0) {
		if u.HasDist || u.P50Util != 0 || u.P95Util != 0 {
			t.Fatalf("distribution fields set without metrics: %+v", u)
		}
	}
	if net.Metrics() != nil {
		t.Fatal("Metrics() non-nil without SetMetrics")
	}
}

// The zero-horizon hotspot table must say why every mean is zero
// instead of silently printing misleading rows.
func TestHotspotTableZeroHorizonNote(t *testing.T) {
	s := sim.NewScheduler()
	net, _ := line(s, 2, 100)
	tbl := net.HotspotTable("hotspots", 0)
	if !strings.Contains(tbl.String(), "zero simulated horizon") {
		t.Fatalf("zero-horizon table missing explanatory note:\n%s", tbl.String())
	}

	// After simulated time passes, the note disappears.
	s2 := sim.NewScheduler()
	net2, links2 := line(s2, 2, 100)
	net2.StartFlow(FlowSpec{Links: links2, Bytes: 100, Latency: 0})
	s2.Run()
	if strings.Contains(net2.HotspotTable("hotspots", 0).String(), "zero simulated horizon") {
		t.Fatal("note emitted despite nonzero horizon")
	}
}

// Detaching metrics stops counter updates but leaves the registry's
// accumulated state intact.
func TestSetMetricsDetach(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: 0})
	s.Run()
	net.SetMetrics(nil)
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: 0})
	s.Run()
	if got := reg.Lookup("net/flows_started").Value(); got != 1 {
		t.Fatalf("flows_started = %g after detach, want 1", got)
	}
}
