package netsim

import (
	"testing"

	"github.com/wafernet/fred/internal/critpath"
	"github.com/wafernet/fred/internal/metrics"
	"github.com/wafernet/fred/internal/sim"
	"github.com/wafernet/fred/internal/timeseries"
)

// attachRecorder wires a flight recorder onto a network the way the
// experiment session does: scheduler probes first, then the network's.
func attachRecorder(s *sim.Scheduler, net *Network) *timeseries.Recorder {
	rec := timeseries.NewRecorder(timeseries.Config{Interval: 1, Capacity: 64})
	rec.AttachScheduler(s)
	net.SetTimeseries(rec)
	return rec
}

// TestTimeseriesProbes: the recorder's network probes track flow
// activity, completions, delivered bytes and fill work over the run.
func TestTimeseriesProbes(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	rec := attachRecorder(s, net)
	if net.Timeseries() != rec {
		t.Fatal("Timeseries accessor does not return the attached recorder")
	}

	net.StartFlow(FlowSpec{Links: links, Bytes: 500, Latency: -1, Label: "a"})
	net.StartFlow(FlowSpec{Links: links, Bytes: 500, Latency: -1, Label: "b"})
	end := s.Run()
	rec.Finish(end)

	idx := map[string]int{}
	for i, p := range rec.Probes() {
		idx[p.Name] = i
	}
	for _, name := range []string{
		"sched/pending", "sched/fired", "net/active_flows",
		"net/flows_completed", "net/bytes_delivered",
		"net/fill/recomputes", "net/fill/domains_filled", "net/fill/flows_filled",
		"net/util/max", "net/util/topk_mean",
	} {
		if _, ok := idx[name]; !ok {
			t.Fatalf("probe %q not registered (have %v)", name, idx)
		}
	}
	last := func(name string) float64 {
		v := rec.Values(idx[name])
		return v[len(v)-1]
	}
	if got := last("net/flows_completed"); got != 2 {
		t.Errorf("final flows_completed = %g, want 2", got)
	}
	if got := last("net/bytes_delivered"); got != 1000 {
		t.Errorf("final bytes_delivered = %g, want 1000", got)
	}
	if got := last("net/active_flows"); got != 0 {
		t.Errorf("final active_flows = %g, want 0", got)
	}
	if got := last("net/fill/recomputes"); got <= 0 {
		t.Errorf("final fill recomputes = %g, want > 0", got)
	}
	// Two 500 B flows sharing one 100 B/s link: both at rate 50 until
	// t=10. The sample at t=1 must see the saturated link.
	util := rec.Values(idx["net/util/max"])
	times := rec.Times()
	sawSaturated := false
	for i, ts := range times {
		if ts >= 1 && ts < 10 && approx(util[i], 1) {
			sawSaturated = true
		}
	}
	if !sawSaturated {
		t.Errorf("net/util/max never sampled 1.0 mid-run: times %v utils %v", times, util)
	}
}

// TestTimeseriesCritProbes: with a critpath recorder attached first,
// the flight recorder also samples the cumulative blame decomposition.
func TestTimeseriesCritProbes(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	net.SetCritPath(critpath.NewRecorder())
	rec := attachRecorder(s, net)

	net.StartFlow(FlowSpec{Links: links, Bytes: 200, Latency: -1})
	end := s.Run()
	rec.Finish(end)

	idx := map[string]int{}
	for i, p := range rec.Probes() {
		idx[p.Name] = i
	}
	i, ok := idx["crit/serial_s"]
	if !ok {
		t.Fatalf("crit probes missing (have %v)", idx)
	}
	v := rec.Values(i)
	// The solo flow closes at t=2 with 2s of serialized blame.
	if got := v[len(v)-1]; !approx(got, 2) {
		t.Errorf("final crit/serial_s = %g, want 2", got)
	}
}

// TestTimeseriesObserverEffectFree: attaching the recorder must not
// change a single simulated outcome — same completion times, same
// event counts as an unobserved run.
func TestTimeseriesObserverEffectFree(t *testing.T) {
	type outcome struct {
		end   float64
		fired uint64
		fin   []float64
	}
	runOnce := func(observe bool) outcome {
		s := sim.NewScheduler()
		net, links := line(s, 3, 100)
		var rec *timeseries.Recorder
		if observe {
			rec = attachRecorder(s, net)
		}
		fa := net.StartFlow(FlowSpec{Links: links, Bytes: 300, Latency: -1, Label: "a"})
		fb := net.StartFlow(FlowSpec{Links: links[:1], Bytes: 500, Latency: -1, Label: "b"})
		end := s.Run()
		if observe {
			rec.Finish(end)
			if rec.Len() == 0 {
				t.Fatal("observed run recorded nothing")
			}
		}
		return outcome{end: end, fired: s.Fired(), fin: []float64{fa.Finished(), fb.Finished()}}
	}
	plain, observed := runOnce(false), runOnce(true)
	if plain.end != observed.end || plain.fired != observed.fired {
		t.Fatalf("observer effect: end %g/%g fired %d/%d",
			plain.end, observed.end, plain.fired, observed.fired)
	}
	for i := range plain.fin {
		if plain.fin[i] != observed.fin[i] {
			t.Fatalf("flow %d finished at %g observed vs %g plain", i, observed.fin[i], plain.fin[i])
		}
	}
}

// TestFillStatsMetrics: FlushMetrics exports the rate-engine fill
// counters as netsim/fill/* series, incrementally across flushes.
func TestFillStatsMetrics(t *testing.T) {
	s := sim.NewScheduler()
	net, links := line(s, 2, 100)
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)
	net.StartFlow(FlowSpec{Links: links, Bytes: 1000, Latency: 0})
	s.Run()
	net.FlushMetrics()

	stats := net.FillStats()
	for name, want := range map[string]float64{
		"netsim/fill/recomputes":        float64(stats.Recomputes),
		"netsim/fill/fill_passes":       float64(stats.FillPasses),
		"netsim/fill/lazy_skips":        float64(stats.Recomputes - stats.FillPasses),
		"netsim/fill/domains_filled":    float64(stats.DomainsFilled),
		"netsim/fill/components_filled": float64(stats.ComponentsFilled),
		"netsim/fill/flows_filled":      float64(stats.FlowsFilled),
	} {
		sr := reg.Lookup(name)
		if sr == nil {
			t.Fatalf("%s not exported", name)
		}
		if sr.Value() != want {
			t.Errorf("%s = %g, want %g", name, sr.Value(), want)
		}
	}
	if reg.Lookup("netsim/fill/recomputes").Value() <= 0 {
		t.Error("no recomputes recorded for a completed flow")
	}

	// A second flush with no new work adds nothing; more work adds only
	// the delta.
	net.FlushMetrics()
	before := reg.Lookup("netsim/fill/recomputes").Value()
	if before != float64(stats.Recomputes) {
		t.Fatalf("idempotent flush changed recomputes to %g", before)
	}
	net.StartFlow(FlowSpec{Links: links, Bytes: 100, Latency: 0})
	s.Run()
	net.FlushMetrics()
	after := net.FillStats()
	if got := reg.Lookup("netsim/fill/recomputes").Value(); got != float64(after.Recomputes) {
		t.Errorf("incremental flush: series %g, want cumulative %d", got, after.Recomputes)
	}
}
