package metrics

import "testing"

func artifactOf(build func(r *Registry)) *Artifact {
	r := NewRegistry()
	build(r)
	return r.Export(Manifest{Tool: "test"})
}

func TestCompareVerdicts(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").SetBetter("lower").Set(100)
		r.Gauge("tput", "").SetBetter("higher").Set(50)
		r.Gauge("info", "").Set(1)
		r.Gauge("tight", "").SetBetter("lower").SetTolerance(0.01).Set(100)
		r.Gauge("gone", "").Set(3)
	})
	cand := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").Set(150)    // +50% → regression at 10%
		r.Gauge("tput", "").Set(49)     // −2% → ok at 10%
		r.Gauge("info", "").Set(999)    // no direction → info
		r.Gauge("tight", "").Set(103)   // +3% beyond its own 1% → regression
		r.Gauge("brandnew", "").Set(42) // candidate-only
	})
	deltas := Compare(ref, cand, 0.10)
	want := map[string]Verdict{
		"lat": VerdictRegression, "tput": VerdictOK, "info": VerdictInfo,
		"tight": VerdictRegression, "gone": VerdictMissing, "brandnew": VerdictNew,
	}
	if len(deltas) != len(want) {
		t.Fatalf("%d delta rows, want %d", len(deltas), len(want))
	}
	for _, d := range deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s verdict = %s, want %s", d.Name, d.Verdict, want[d.Name])
		}
	}
	if got := Regressions(deltas); got != 2 {
		t.Fatalf("Regressions = %d, want 2", got)
	}
	// Rows preserve reference order, then candidate-only rows.
	order := []string{"lat", "tput", "info", "tight", "gone", "brandnew"}
	for i, d := range deltas {
		if d.Name != order[i] {
			t.Fatalf("row %d = %s, want %s", i, d.Name, order[i])
		}
	}
}

func TestCompareImprovedAndHigher(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").SetBetter("lower").Set(100)
		r.Gauge("tput", "").SetBetter("higher").Set(100)
	})
	cand := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").Set(50)  // −50% → improved
		r.Gauge("tput", "").Set(500) // +400% → improved
	})
	for _, d := range Compare(ref, cand, 0.10) {
		if d.Verdict != VerdictImproved {
			t.Errorf("%s verdict = %s, want improved", d.Name, d.Verdict)
		}
	}
	// Better:higher regression.
	worse := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").Set(100)
		r.Gauge("tput", "").Set(10)
	})
	deltas := Compare(ref, worse, 0.10)
	if deltas[1].Verdict != VerdictRegression {
		t.Fatalf("tput drop verdict = %s, want regression", deltas[1].Verdict)
	}
}

// A zero reference (the zero-allocation gate) compares absolutely: any
// increase beyond the tolerance regresses, and staying at zero is ok.
func TestCompareZeroBaseline(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("allocs", "").SetBetter("lower").SetTolerance(0.25).Set(0)
	})
	still := artifactOf(func(r *Registry) { r.Gauge("allocs", "").Set(0) })
	if d := Compare(ref, still, 0.10)[0]; d.Verdict != VerdictOK || !d.AbsBase {
		t.Fatalf("0→0 delta = %+v, want ok/absolute", d)
	}
	leak := artifactOf(func(r *Registry) { r.Gauge("allocs", "").Set(3) })
	if d := Compare(ref, leak, 0.10)[0]; d.Verdict != VerdictRegression {
		t.Fatalf("0→3 verdict = %s, want regression", d.Verdict)
	}
}

// A change landing exactly at the tolerance is not a regression: the
// gate fails only strictly beyond it (bad > tol), so a candidate that
// sits right on the boundary passes in both directions.
func TestCompareExactlyAtTolerancePasses(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").SetBetter("lower").Set(100)
		r.Gauge("tput", "").SetBetter("higher").Set(100)
	})
	cand := artifactOf(func(r *Registry) {
		r.Gauge("lat", "s").Set(110) // +10% at a 10% tolerance
		r.Gauge("tput", "").Set(90)  // −10% at a 10% tolerance
	})
	for _, d := range Compare(ref, cand, 0.10) {
		if d.Verdict != VerdictOK {
			t.Errorf("%s at exactly the tolerance = %s, want ok", d.Name, d.Verdict)
		}
	}
	// The boundary also holds for a per-series tolerance and in absolute
	// mode (zero reference).
	refAbs := artifactOf(func(r *Registry) {
		r.Gauge("allocs", "").SetBetter("lower").SetTolerance(2).Set(0)
	})
	edge := artifactOf(func(r *Registry) { r.Gauge("allocs", "").Set(2) })
	if d := Compare(refAbs, edge, 0.10)[0]; d.Verdict != VerdictOK || !d.AbsBase {
		t.Fatalf("0→2 at absolute tolerance 2 = %+v, want ok/absolute", d)
	}
	over := artifactOf(func(r *Registry) { r.Gauge("allocs", "").Set(2.5) })
	if d := Compare(refAbs, over, 0.10)[0]; d.Verdict != VerdictRegression {
		t.Fatalf("0→2.5 beyond absolute tolerance = %s, want regression", d.Verdict)
	}
}

// A drop below a zero reference counts as an absolute improvement for
// better:lower series — the sign convention survives the AbsBase
// switch.
func TestCompareZeroBaselineImproves(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("drift", "s").SetBetter("lower").Set(0)
	})
	cand := artifactOf(func(r *Registry) { r.Gauge("drift", "s").Set(-3) })
	d := Compare(ref, cand, 0.10)[0]
	if !d.AbsBase || d.Rel != -3 {
		t.Fatalf("0→−3 delta = %+v, want absolute Rel −3", d)
	}
	if d.Verdict != VerdictImproved {
		t.Fatalf("0→−3 verdict = %s, want improved", d.Verdict)
	}
}

// Missing and New rows are schema-drift notes, never gate failures:
// they carry the one-sided presence flags, keep the side they do have,
// and don't count toward Regressions.
func TestCompareMissingVersusNew(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Gauge("gone", "s").SetBetter("lower").Set(7)
	})
	cand := artifactOf(func(r *Registry) {
		r.Gauge("fresh", "B").SetBetter("lower").Set(9)
	})
	deltas := Compare(ref, cand, 0.10)
	if len(deltas) != 2 {
		t.Fatalf("%d delta rows, want 2", len(deltas))
	}
	gone, fresh := deltas[0], deltas[1]
	if gone.Verdict != VerdictMissing || !gone.HasOld || gone.HasNew {
		t.Fatalf("missing row = %+v, want HasOld only", gone)
	}
	if gone.Old != 7 || gone.Unit != "s" {
		t.Fatalf("missing row lost its reference side: %+v", gone)
	}
	if fresh.Verdict != VerdictNew || fresh.HasOld || !fresh.HasNew {
		t.Fatalf("new row = %+v, want HasNew only", fresh)
	}
	if fresh.New != 9 || fresh.Unit != "B" {
		t.Fatalf("new row lost its candidate side: %+v", fresh)
	}
	if got := Regressions(deltas); got != 0 {
		t.Fatalf("missing/new counted as regressions: %d", got)
	}
}

// Histogram series compare on their scalar (weighted mean).
func TestCompareHistograms(t *testing.T) {
	ref := artifactOf(func(r *Registry) {
		r.Histogram("util", "", UtilBuckets()).SetBetter("lower").Observe(0.5, 10)
	})
	cand := artifactOf(func(r *Registry) {
		r.Histogram("util", "", UtilBuckets()).Observe(0.9, 10)
	})
	d := Compare(ref, cand, 0.10)[0]
	if d.Old != 0.5 || d.New != 0.9 {
		t.Fatalf("histogram scalars %g→%g, want 0.5→0.9", d.Old, d.New)
	}
	if d.Verdict != VerdictRegression {
		t.Fatalf("verdict = %s, want regression", d.Verdict)
	}
}
