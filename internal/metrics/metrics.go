// Package metrics is the simulators' deterministic, sim-clock metrics
// subsystem: a registry of named counters, gauges and fixed-bucket
// histograms that the network and training simulators populate at
// their existing observability hook points, exported as a versioned,
// machine-readable run artifact (see artifact.go) that cmd/fredreport
// can diff across runs.
//
// Determinism is the design constraint everything else bends to:
//
//   - Series are kept in registration order (an ordered slice plus a
//     name index), never in map-iteration order, so export order is
//     reproducible.
//   - Histograms use fixed, log-spaced bucket bounds chosen at
//     registration. Observations only ever add a weight to one bucket
//     and to scalar accumulators, so the stored state is independent
//     of how concurrent experiment cells are scheduled — each cell
//     owns a private Registry and the cells merge in slot order
//     (Collector), making the merged artifact byte-identical at every
//     `-parallel` pool size.
//   - Quantiles are derived from the bucket weights (upper-bound
//     estimator clamped to the observed extrema), not from raw sample
//     streams, so they are insensitive to sample arrival order.
//
// The package has no dependencies on the simulators; netsim and
// training depend on it, mirroring how trace.Tracer is consumed.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// EngineVersion identifies the simulator engine revision that produced
// an artifact. Bump it when a change intentionally alters simulated
// results, so fredreport can flag cross-version comparisons.
const EngineVersion = "fred-sim/4"

// Kind discriminates the series types.
type Kind int

// Series kinds.
const (
	// KindCounter is a monotonically accumulating value (Add).
	KindCounter Kind = iota
	// KindGauge is a last-write-wins point measurement (Set).
	KindGauge
	// KindHistogram is a weighted distribution over fixed buckets
	// (Observe).
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString parses the artifact encoding of a Kind.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "counter":
		return KindCounter, nil
	case "gauge":
		return KindGauge, nil
	case "histogram":
		return KindHistogram, nil
	}
	return 0, fmt.Errorf("metrics: unknown series kind %q", s)
}

// Series is one named metric. The zero value is not useful; obtain
// series from a Registry.
type Series struct {
	name      string
	kind      Kind
	unit      string
	better    string  // "", "lower" or "higher": regression direction
	tolerance float64 // relative comparison tolerance; 0 = comparator default

	// Counter / gauge state.
	value float64
	set   bool // a gauge was explicitly Set at least once

	// Histogram state: weights[i] accumulates observations with
	// value ≤ bounds[i] (and > bounds[i-1]); weights[len(bounds)] is
	// the overflow bucket. count/sum/min/max are weighted scalar
	// accumulators for exact mean and extrema.
	bounds   []float64
	weights  []float64
	count    float64
	sum      float64
	min, max float64
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() Kind { return s.kind }

// Unit returns the unit label given at registration.
func (s *Series) Unit() string { return s.unit }

// Better returns the regression direction ("lower", "higher" or "").
func (s *Series) Better() string { return s.better }

// SetBetter marks which direction is an improvement, making the series
// eligible for fredreport's regression gating. It returns the series
// for chaining.
func (s *Series) SetBetter(dir string) *Series {
	if dir != "" && dir != "lower" && dir != "higher" {
		panic(fmt.Sprintf("metrics: better direction %q (want lower/higher/empty)", dir))
	}
	s.better = dir
	return s
}

// SetTolerance sets the series' relative comparison tolerance,
// overriding fredreport's global threshold for this series.
func (s *Series) SetTolerance(t float64) *Series {
	s.tolerance = t
	return s
}

// Add accumulates into a counter. Negative deltas panic: counters are
// monotone by contract.
func (s *Series) Add(v float64) {
	if s.kind != KindCounter {
		panic(fmt.Sprintf("metrics: Add on %v series %q", s.kind, s.name))
	}
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative counter delta %g on %q", v, s.name))
	}
	s.value += v
}

// Set stores a gauge value.
func (s *Series) Set(v float64) {
	if s.kind != KindGauge {
		panic(fmt.Sprintf("metrics: Set on %v series %q", s.kind, s.name))
	}
	s.value = v
	s.set = true
}

// Value returns the current counter or gauge value.
func (s *Series) Value() float64 { return s.value }

// Observe adds a weighted observation to a histogram. The simulators
// use the sim-time duration a value held as its weight, yielding
// time-weighted distributions; weight 1 gives plain sample counting.
// Zero or negative weights are ignored.
func (s *Series) Observe(v, weight float64) {
	if s.kind != KindHistogram {
		panic(fmt.Sprintf("metrics: Observe on %v series %q", s.kind, s.name))
	}
	if weight <= 0 {
		return
	}
	i := sort.SearchFloat64s(s.bounds, v)
	s.weights[i] += weight
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count += weight
	s.sum += v * weight
}

// Count returns the histogram's total observation weight.
func (s *Series) Count() float64 { return s.count }

// Sum returns the histogram's weighted value sum.
func (s *Series) Sum() float64 { return s.sum }

// Min returns the smallest observed value (0 when empty).
func (s *Series) Min() float64 { return s.min }

// Max returns the largest observed value (0 when empty).
func (s *Series) Max() float64 { return s.max }

// Mean returns the weighted mean (0 when empty).
func (s *Series) Mean() float64 {
	if s.count <= 0 {
		return 0
	}
	return s.sum / s.count
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// weights: the upper bound of the bucket where the cumulative weight
// crosses q×total, clamped to the observed [min, max]. The estimate is
// a function of the accumulated bucket state only, so it is as
// deterministic as the observations themselves.
func (s *Series) Quantile(q float64) float64 {
	if s.kind != KindHistogram {
		panic(fmt.Sprintf("metrics: Quantile on %v series %q", s.kind, s.name))
	}
	if s.count <= 0 {
		return 0
	}
	target := q * s.count
	cum := 0.0
	for i, w := range s.weights {
		cum += w
		if cum >= target {
			est := s.max
			if i < len(s.bounds) {
				est = s.bounds[i]
			}
			if est > s.max {
				est = s.max
			}
			if est < s.min {
				est = s.min
			}
			return est
		}
	}
	return s.max
}

// Bounds returns the histogram's bucket upper bounds (aliased, do not
// mutate).
func (s *Series) Bounds() []float64 { return s.bounds }

// Weights returns the histogram's bucket weights, one per bound plus a
// final overflow bucket (aliased, do not mutate).
func (s *Series) Weights() []float64 { return s.weights }

// Registry is an ordered collection of series. It is not safe for
// concurrent use: each experiment cell owns a private registry (the
// simulators are single-goroutine) and concurrent cells merge through
// a Collector.
type Registry struct {
	byName map[string]*Series
	series []*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Series)}
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.series) }

// Series returns the registered series in registration order (aliased,
// do not mutate).
func (r *Registry) Series() []*Series { return r.series }

// Lookup returns the named series, or nil.
func (r *Registry) Lookup(name string) *Series { return r.byName[name] }

func (r *Registry) register(name string, kind Kind, unit string) *Series {
	if s := r.byName[name]; s != nil {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: series %q re-registered as %v (was %v)", name, kind, s.kind))
		}
		return s
	}
	s := &Series{name: name, kind: kind, unit: unit}
	r.byName[name] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, unit string) *Series {
	return r.register(name, KindCounter, unit)
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, unit string) *Series {
	return r.register(name, KindGauge, unit)
}

// Histogram registers (or returns the existing) histogram series with
// the given bucket upper bounds, which must be sorted ascending. The
// bounds slice is retained; callers share canonical bound sets (e.g.
// UtilBuckets) so that histograms of the same name merge across
// registries.
func (r *Registry) Histogram(name, unit string, bounds []float64) *Series {
	if s := r.byName[name]; s != nil {
		if s.kind != KindHistogram {
			panic(fmt.Sprintf("metrics: series %q re-registered as histogram (was %v)", name, s.kind))
		}
		return s
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q with no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending at %d", name, i))
		}
	}
	s := r.register(name, KindHistogram, unit)
	s.bounds = bounds
	s.weights = make([]float64, len(bounds)+1)
	return s
}

// Merge folds another registry into this one, series by series matched
// on name: counters sum, gauges take the other's value when it was
// set, histogram buckets and scalar accumulators add (bounds must be
// identical). Unknown series are registered in the other registry's
// order, so merging a deterministic sequence of registries yields a
// deterministic result.
func (r *Registry) Merge(o *Registry) {
	for _, os := range o.series {
		switch os.kind {
		case KindCounter:
			r.Counter(os.name, os.unit).copyMeta(os).value += os.value
		case KindGauge:
			s := r.Gauge(os.name, os.unit).copyMeta(os)
			if os.set {
				s.value = os.value
				s.set = true
			}
		case KindHistogram:
			s := r.Histogram(os.name, os.unit, os.bounds).copyMeta(os)
			if len(s.bounds) != len(os.bounds) {
				panic(fmt.Sprintf("metrics: merge of %q with mismatched buckets", os.name))
			}
			for i := range s.bounds {
				if s.bounds[i] != os.bounds[i] {
					panic(fmt.Sprintf("metrics: merge of %q with mismatched buckets", os.name))
				}
			}
			for i, w := range os.weights {
				s.weights[i] += w
			}
			if os.count > 0 {
				if s.count == 0 || os.min < s.min {
					s.min = os.min
				}
				if s.count == 0 || os.max > s.max {
					s.max = os.max
				}
				s.count += os.count
				s.sum += os.sum
			}
		}
	}
}

// copyMeta carries regression metadata across a merge (first writer
// wins; all producers set identical metadata in practice).
func (s *Series) copyMeta(o *Series) *Series {
	if s.better == "" {
		s.better = o.better
	}
	if s.tolerance == 0 {
		s.tolerance = o.tolerance
	}
	return s
}

// LogBuckets builds log-spaced bucket upper bounds from lo up to (at
// least) hi with perDecade buckets per factor of ten. Bounds are a
// pure function of the arguments, so every caller passing the same
// shape gets bit-identical buckets.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic(fmt.Sprintf("metrics: LogBuckets(%g, %g, %d) invalid", lo, hi, perDecade))
	}
	var out []float64
	for e := 0; ; e++ {
		v := lo * math.Pow(10, float64(e)/float64(perDecade))
		out = append(out, v)
		if v >= hi {
			return out
		}
	}
}

// utilBuckets is the canonical bound set for link-utilization
// histograms, shared so per-link series merge across experiment cells.
var utilBuckets = LogBuckets(1e-3, 1, 9)

// UtilBuckets returns the canonical log-spaced bounds for utilization
// histograms (1e-3 … 1.0, 9 buckets per decade; utilization below the
// first bound lands in its bucket, above 1.0 in the overflow bucket).
func UtilBuckets() []float64 { return utilBuckets }

// secondsBuckets is the canonical bound set for duration histograms.
var secondsBuckets = LogBuckets(1e-9, 1e3, 3)

// SecondsBuckets returns the canonical log-spaced bounds for duration
// histograms (1 ns … 1000 s, 3 buckets per decade).
func SecondsBuckets() []float64 { return secondsBuckets }
