package metrics

import "sync"

// Collector accumulates registries produced by concurrent experiment
// cells while guaranteeing a deterministic merge order — the same
// slot-reservation pattern as report.Collector: a producer reserves an
// ordered slot up front (in work-issue order) and fills it whenever
// its cell completes; Merged folds the slots in reservation order, so
// the merged registry is independent of completion order and the
// exported artifact is byte-identical at every worker-pool size.
//
// All methods are safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	slots [][]*Registry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reserve allocates the next ordered slot and returns its index.
func (c *Collector) Reserve() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots = append(c.slots, nil)
	return len(c.slots) - 1
}

// Fill appends registries to a previously reserved slot. It may be
// called several times; registries accumulate within the slot in call
// order.
func (c *Collector) Fill(slot int, regs ...*Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[slot] = append(c.slots[slot], regs...)
}

// Append reserves a slot and fills it in one step — the sequential
// producer's convenience.
func (c *Collector) Append(regs ...*Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots = append(c.slots, regs)
}

// Registries returns every collected registry, flattened in slot
// order.
func (c *Collector) Registries() []*Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Registry
	for _, s := range c.slots {
		out = append(out, s...)
	}
	return out
}

// Merged folds every collected registry, in slot order, into a fresh
// registry.
func (c *Collector) Merged() *Registry {
	merged := NewRegistry()
	for _, r := range c.Registries() {
		merged.Merge(r)
	}
	return merged
}
