package metrics

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
)

// Schema is the artifact schema identifier. fredreport accepts any
// "fred-metrics/*" version and reports cross-version comparisons.
const Schema = "fred-metrics/v1"

// Manifest identifies the run that produced an artifact: enough to
// tell whether two artifacts are comparable (same workload, system,
// parallelism config and engine revision) without re-reading the
// command lines that produced them.
type Manifest struct {
	// Tool is the producing command ("fredsim", "fredtrain", "bench").
	Tool string `json:"tool"`
	// Command is the experiment or sub-command that ran. It must not
	// encode execution-only knobs (worker-pool size, output paths):
	// artifacts of the same simulation are byte-identical regardless.
	Command string `json:"command,omitempty"`
	// Workload and System name the simulated configuration.
	Workload string `json:"workload,omitempty"`
	System   string `json:"system,omitempty"`
	// Strategy is the 3D parallelization strategy, e.g. "MP(3)-DP(3)-PP(2)".
	Strategy string `json:"strategy,omitempty"`
	// BatchPerReplica is the per-DP-replica minibatch.
	BatchPerReplica int `json:"batch_per_replica,omitempty"`
	// Schedule is the pipeline schedule ("GPipe", "1F1B").
	Schedule string `json:"schedule,omitempty"`
	// Seed is the RNG seed for randomized studies; 0 for the fully
	// deterministic drivers.
	Seed int64 `json:"seed,omitempty"`
	// EngineVersion is the simulator revision (metrics.EngineVersion).
	EngineVersion string `json:"engine_version,omitempty"`
	// ConfigHash is the FNV-1a hash of CanonicalKey — a stable identity
	// for "the same simulated configuration", the cache key groundwork
	// for fredd result reuse. Export stamps it when empty.
	ConfigHash string `json:"config_hash,omitempty"`
	// Notes carries free-form context (environment, methodology).
	Notes []string `json:"notes,omitempty"`
}

// CanonicalKey renders the manifest's identity fields — everything
// that determines the simulation's outcome, and nothing that doesn't
// (no output paths, no notes, no pool sizes) — as a stable ordered
// string. Two runs with equal keys simulate the same configuration on
// the same engine revision.
func (m Manifest) CanonicalKey() string {
	engine := m.EngineVersion
	if engine == "" {
		engine = EngineVersion
	}
	var b strings.Builder
	for _, kv := range [][2]string{
		{"tool", m.Tool},
		{"command", m.Command},
		{"workload", m.Workload},
		{"system", m.System},
		{"strategy", m.Strategy},
		{"batch", strconv.Itoa(m.BatchPerReplica)},
		{"schedule", m.Schedule},
		{"seed", strconv.FormatInt(m.Seed, 10)},
		{"engine", engine},
	} {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString(kv[0])
		b.WriteByte('=')
		b.WriteString(kv[1])
	}
	return b.String()
}

// Hash returns the 64-bit FNV-1a hash of CanonicalKey, hex-encoded.
func (m Manifest) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(m.CanonicalKey()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Stamp fills the derived manifest fields when empty — the engine
// version and the canonical config hash — and returns the stamped
// copy. Exporters call it so every artifact is self-describing.
func (m Manifest) Stamp() Manifest {
	if m.EngineVersion == "" {
		m.EngineVersion = EngineVersion
	}
	if m.ConfigHash == "" {
		m.ConfigHash = m.Hash()
	}
	return m
}

// Bucket is one non-empty histogram bucket in an artifact: the weight
// of observations ≤ LE (and above the previous bound). The overflow
// bucket is flagged instead of carrying an unencodable +Inf bound.
type Bucket struct {
	LE       float64 `json:"le,omitempty"`
	Overflow bool    `json:"overflow,omitempty"`
	W        float64 `json:"w"`
}

// SeriesData is the artifact encoding of one series. Scalar kinds use
// Value; histograms carry derived statistics plus the sparse non-empty
// buckets.
type SeriesData struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind"`
	Unit      string   `json:"unit,omitempty"`
	Better    string   `json:"better,omitempty"`
	Tolerance float64  `json:"tolerance,omitempty"`
	Value     *float64 `json:"value,omitempty"`
	Count     float64  `json:"count,omitempty"`
	Sum       float64  `json:"sum,omitempty"`
	Min       float64  `json:"min,omitempty"`
	Max       float64  `json:"max,omitempty"`
	P50       float64  `json:"p50,omitempty"`
	P95       float64  `json:"p95,omitempty"`
	Buckets   []Bucket `json:"buckets,omitempty"`
}

// Artifact is the versioned machine-readable run record: a manifest
// plus every registry series, in registration order.
type Artifact struct {
	Schema   string       `json:"schema"`
	Manifest Manifest     `json:"manifest"`
	Series   []SeriesData `json:"series"`
}

// Export snapshots the registry into an artifact under the given
// manifest. The encoding is fully determined by the registry state:
// series in registration order, histograms as sparse non-empty buckets
// in bound order.
func (r *Registry) Export(m Manifest) *Artifact {
	a := &Artifact{Schema: Schema, Manifest: m.Stamp()}
	for _, s := range r.series {
		d := SeriesData{
			Name:      s.name,
			Kind:      s.kind.String(),
			Unit:      s.unit,
			Better:    s.better,
			Tolerance: s.tolerance,
		}
		switch s.kind {
		case KindCounter, KindGauge:
			v := s.value
			d.Value = &v
		case KindHistogram:
			d.Count = s.count
			d.Sum = s.sum
			d.Min = s.min
			d.Max = s.max
			d.P50 = s.Quantile(0.50)
			d.P95 = s.Quantile(0.95)
			for i, w := range s.weights {
				if w == 0 {
					continue
				}
				b := Bucket{W: w}
				if i < len(s.bounds) {
					b.LE = s.bounds[i]
				} else {
					b.Overflow = true
				}
				d.Buckets = append(d.Buckets, b)
			}
		}
		a.Series = append(a.Series, d)
	}
	return a
}

// Encode renders the artifact as indented JSON with a trailing
// newline. Encoding uses only structs and slices (no maps), so the
// bytes are a pure function of the artifact.
func (a *Artifact) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses an artifact and validates its schema family.
func Decode(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("metrics: parsing artifact: %w", err)
	}
	if !strings.HasPrefix(a.Schema, "fred-metrics/") {
		return nil, fmt.Errorf("metrics: not a fred-metrics artifact (schema %q)", a.Schema)
	}
	return &a, nil
}

// WriteFile encodes the artifact to a file.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates an artifact from a file.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Scalar returns the comparable headline value of a series: the value
// of a counter or gauge, the weighted mean of a histogram.
func (d *SeriesData) Scalar() float64 {
	if d.Value != nil {
		return *d.Value
	}
	if d.Count > 0 {
		return d.Sum / d.Count
	}
	return 0
}
