package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestRegistryOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", "s")
	r.Gauge("a", "")
	r.Histogram("c", "", UtilBuckets())
	names := []string{}
	for _, s := range r.Series() {
		names = append(names, s.Name())
	}
	want := []string{"b", "a", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series order %v, want %v (registration order)", names, want)
		}
	}
	if r.Lookup("a").Kind() != KindGauge {
		t.Fatal("lookup returned wrong series")
	}
	if r.Lookup("missing") != nil {
		t.Fatal("lookup of unknown series not nil")
	}
	// Re-registration returns the same series.
	r.Counter("b", "s").Add(2)
	r.Counter("b", "s").Add(3)
	if got := r.Lookup("b").Value(); got != 5 {
		t.Fatalf("counter = %g, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	for name, fn := range map[string]func(){
		"re-register": func() { r.Gauge("x", "") },
		"set-counter": func() { r.Lookup("x").Set(1) },
		"neg-add":     func() { r.Lookup("x").Add(-1) },
		"observe":     func() { r.Lookup("x").Observe(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("util", "", UtilBuckets())
	// 60% of the time at util 0.5, 30% at 0.9, 10% at 0.05.
	h.Observe(0.5, 6)
	h.Observe(0.9, 3)
	h.Observe(0.05, 1)
	if got := h.Count(); got != 10 {
		t.Fatalf("count = %g, want 10", got)
	}
	wantMean := (0.5*6 + 0.9*3 + 0.05*1) / 10
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("mean = %g, want %g", got, wantMean)
	}
	if h.Min() != 0.05 || h.Max() != 0.9 {
		t.Fatalf("min/max = %g/%g, want 0.05/0.9", h.Min(), h.Max())
	}
	// p50 falls in the bucket holding 0.5; the estimator returns its
	// upper bound, which must bracket the true value within one log
	// step (10^(1/9) ≈ 1.29×).
	p50 := h.Quantile(0.5)
	if p50 < 0.5 || p50 > 0.5*math.Pow(10, 1.0/9)+1e-12 {
		t.Fatalf("p50 = %g, want within one bucket above 0.5", p50)
	}
	// p95 falls in the 0.9 bucket; clamped to the observed max.
	p95 := h.Quantile(0.95)
	if p95 < 0.9-1e-12 || p95 > 0.9+1e-12 {
		t.Fatalf("p95 = %g, want clamped to max 0.9", p95)
	}
	if got := h.Quantile(1.0); got != 0.9 {
		t.Fatalf("p100 = %g, want max", got)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(0.5, 0) // zero weight ignored
	if h.Count() != 0 {
		t.Fatal("zero-weight observation counted")
	}
	h.Observe(100, 1) // overflow bucket
	if got := h.Weights()[2]; got != 1 {
		t.Fatalf("overflow weight = %g, want 1", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("overflow quantile = %g, want observed max 100", got)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-3, 1, 9)
	if b[0] != 1e-3 {
		t.Fatalf("first bound = %g, want 1e-3", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if last := b[len(b)-1]; last < 1 {
		t.Fatalf("last bound %g < hi", last)
	}
	// Canonical sets are shared instances, so same-name histograms
	// merge across registries.
	if &UtilBuckets()[0] != &UtilBuckets()[0] {
		t.Fatal("UtilBuckets not a shared instance")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c", "s").Add(1)
	a.Gauge("g", "").Set(7)
	a.Histogram("h", "", UtilBuckets()).Observe(0.5, 2)

	b.Counter("c", "s").Add(2)
	b.Gauge("g2", "").Set(3)
	b.Histogram("h", "", UtilBuckets()).Observe(0.9, 1)
	b.Counter("extra", "").SetBetter("lower").Add(4)

	a.Merge(b)
	if got := a.Lookup("c").Value(); got != 3 {
		t.Fatalf("merged counter = %g, want 3", got)
	}
	if got := a.Lookup("g").Value(); got != 7 {
		t.Fatalf("gauge overwritten by unset merge: %g", got)
	}
	if got := a.Lookup("g2").Value(); got != 3 {
		t.Fatalf("new gauge = %g, want 3", got)
	}
	h := a.Lookup("h")
	if h.Count() != 3 || h.Max() != 0.9 || h.Min() != 0.5 {
		t.Fatalf("merged histogram count/min/max = %g/%g/%g", h.Count(), h.Min(), h.Max())
	}
	if got := a.Lookup("extra"); got == nil || got.Better() != "lower" {
		t.Fatal("merge lost new series or its metadata")
	}
	// New series appended after existing ones, in the other
	// registry's order.
	last := a.Series()[len(a.Series())-1]
	if last.Name() != "extra" {
		t.Fatalf("merge order: last series %q, want extra", last.Name())
	}
}

// The collector contract: slots merge in reservation order no matter
// which goroutine fills them first.
func TestCollectorSlotOrder(t *testing.T) {
	c := NewCollector()
	slots := make([]int, 4)
	for i := range slots {
		slots[i] = c.Reserve()
	}
	var wg sync.WaitGroup
	for i := 3; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRegistry()
			r.Counter("order", "").Add(float64(i + 1))
			r.Counter("only/"+string(rune('a'+i)), "").Add(1)
			c.Fill(slots[i], r)
		}(i)
	}
	wg.Wait()
	m := c.Merged()
	if got := m.Lookup("order").Value(); got != 10 {
		t.Fatalf("merged counter = %g, want 10", got)
	}
	// Registration order of the per-slot-unique series follows slot
	// order: only/a, only/b, only/c, only/d.
	want := []string{"order", "only/a", "only/b", "only/c", "only/d"}
	for i, s := range m.Series() {
		if s.Name() != want[i] {
			t.Fatalf("merged order %d = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestSetBetterValidates(t *testing.T) {
	r := NewRegistry()
	s := r.Counter("x", "")
	s.SetBetter("lower").SetBetter("higher").SetBetter("")
	defer func() {
		if recover() == nil {
			t.Fatal("invalid direction accepted")
		}
	}()
	s.SetBetter("sideways")
}
