package metrics

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("net/flows_started", "").Add(12)
	r.Gauge("bench/x/ns_per_op", "ns/op").SetBetter("lower").SetTolerance(2).Set(8780)
	h := r.Histogram("link/a/util", "", UtilBuckets())
	h.Observe(0.5, 3)
	h.Observe(0.95, 1)
	return r
}

func TestArtifactRoundTrip(t *testing.T) {
	m := Manifest{Tool: "test", Workload: "t17b", System: "Fred-D",
		Strategy: "MP(3)-DP(3)-PP(2)", BatchPerReplica: 16, Schedule: "GPipe"}
	art := sampleRegistry().Export(m)
	if art.Schema != Schema {
		t.Fatalf("schema %q", art.Schema)
	}
	if art.Manifest.EngineVersion != EngineVersion {
		t.Fatal("Export did not stamp the engine version")
	}
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("artifact is not valid JSON")
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != 3 {
		t.Fatalf("round-trip kept %d series, want 3", len(back.Series))
	}
	if back.Series[0].Scalar() != 12 {
		t.Fatalf("counter scalar = %g", back.Series[0].Scalar())
	}
	g := back.Series[1]
	if g.Scalar() != 8780 || g.Better != "lower" || g.Tolerance != 2 {
		t.Fatalf("gauge lost metadata: %+v", g)
	}
	hd := back.Series[2]
	if hd.Count != 4 || hd.Max != 0.95 || len(hd.Buckets) != 2 {
		t.Fatalf("histogram data: %+v", hd)
	}
	if hd.P95 < 0.9 {
		t.Fatalf("p95 = %g, want near max", hd.P95)
	}
	if want := (0.5*3 + 0.95) / 4; hd.Scalar() != want {
		t.Fatalf("histogram scalar = %g, want mean %g", hd.Scalar(), want)
	}
}

// Two exports of the same state are byte-identical — the foundation of
// the -parallel golden gate.
func TestArtifactEncodeDeterministic(t *testing.T) {
	m := Manifest{Tool: "test"}
	a, _ := sampleRegistry().Export(m).Encode()
	b, _ := sampleRegistry().Export(m).Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("identical registries encode to different bytes")
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("accepted invalid JSON")
	}
	if _, err := Decode([]byte(`{"schema":"other/v1"}`)); err == nil {
		t.Fatal("accepted foreign schema")
	}
	if _, err := Decode([]byte(`{"schema":"fred-metrics/v9"}`)); err != nil {
		t.Fatalf("rejected future schema version: %v", err)
	}
}

func TestArtifactFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	art := sampleRegistry().Export(Manifest{Tool: "test"})
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != len(art.Series) {
		t.Fatal("file round-trip lost series")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
