package metrics

// Delta is one row of an artifact comparison: a series matched by name
// between an old (reference) and a new (candidate) artifact.
type Delta struct {
	Name   string
	Unit   string
	Better string  // direction inherited from the reference series
	Old    float64 // reference scalar (Scalar() of the series)
	New    float64
	HasOld bool
	HasNew bool
	// Rel is the signed relative change (new−old)/|old|; when the
	// reference is zero it is the absolute change instead (AbsBase).
	Rel     float64
	AbsBase bool
	// Tol is the tolerance the verdict used: the reference series' own
	// Tolerance when set, else the global threshold.
	Tol     float64
	Verdict Verdict
}

// Verdict classifies one comparison row.
type Verdict string

// Comparison verdicts. Only Regression fails a gate: Missing and New
// mark series present on one side only (schema drift worth a note, not
// a failure), Info marks undirected series.
const (
	VerdictOK         Verdict = "ok"
	VerdictRegression Verdict = "regression"
	VerdictImproved   Verdict = "improved"
	VerdictInfo       Verdict = "info"
	VerdictMissing    Verdict = "missing"
	VerdictNew        Verdict = "new"
)

// Compare matches the candidate's series against the reference by
// name, in the reference's order (candidate-only series append at the
// end), and classifies each pair. threshold is the relative tolerance
// for series that don't carry their own; direction comes from the
// reference series' Better field — series without one are
// informational and never regress. A zero reference value switches the
// row to absolute comparison (a 0→anything change has no meaningful
// ratio; the zero-alloc gates rely on this).
func Compare(ref, cand *Artifact, threshold float64) []Delta {
	byName := make(map[string]*SeriesData, len(cand.Series))
	for i := range cand.Series {
		byName[cand.Series[i].Name] = &cand.Series[i]
	}
	var out []Delta
	for i := range ref.Series {
		o := &ref.Series[i]
		d := Delta{
			Name:   o.Name,
			Unit:   o.Unit,
			Better: o.Better,
			Old:    o.Scalar(),
			HasOld: true,
			Tol:    threshold,
		}
		if o.Tolerance > 0 {
			d.Tol = o.Tolerance
		}
		n, ok := byName[o.Name]
		if !ok {
			d.Verdict = VerdictMissing
			out = append(out, d)
			continue
		}
		delete(byName, o.Name)
		d.HasNew = true
		d.New = n.Scalar()
		diff := d.New - d.Old
		if d.Old != 0 {
			d.Rel = diff / abs(d.Old)
		} else {
			d.Rel = diff
			d.AbsBase = true
		}
		d.Verdict = classify(d)
		out = append(out, d)
	}
	// Candidate-only series, in the candidate's order.
	for i := range cand.Series {
		n := &cand.Series[i]
		if _, gone := byName[n.Name]; !gone {
			continue
		}
		out = append(out, Delta{
			Name: n.Name, Unit: n.Unit, New: n.Scalar(), HasNew: true,
			Tol: threshold, Verdict: VerdictNew,
		})
	}
	return out
}

func classify(d Delta) Verdict {
	if d.Better == "" {
		return VerdictInfo
	}
	bad := d.Rel // positive change is bad for better:lower
	if d.Better == "higher" {
		bad = -d.Rel
	}
	switch {
	case bad > d.Tol:
		return VerdictRegression
	case bad < -d.Tol:
		return VerdictImproved
	}
	return VerdictOK
}

// Regressions counts the failing rows of a comparison.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Verdict == VerdictRegression {
			n++
		}
	}
	return n
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
