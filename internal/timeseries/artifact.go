package timeseries

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/wafernet/fred/internal/metrics"
)

// Schema is the timeseries artifact schema identifier. Readers accept
// any "fred-timeseries/*" version.
const Schema = "fred-timeseries/v1"

// SeriesData is the artifact encoding of one sampled series: the probe
// name/unit and its retained (time, value) samples. Samples share the
// cell's time base, but are stored per series so partial readers can
// skip series they do not care about.
type SeriesData struct {
	Name    string       `json:"name"`
	Unit    string       `json:"unit,omitempty"`
	Samples [][2]float64 `json:"samples"`
}

// Cell is one simulation's recorded series: the label names the system
// under test, IntervalS is the final (post-decimation) sampling
// interval, and Decimations counts how many times the ring halved.
type Cell struct {
	Label       string       `json:"label,omitempty"`
	IntervalS   float64      `json:"interval_s"`
	Decimations int          `json:"decimations,omitempty"`
	Series      []SeriesData `json:"series"`
}

// Artifact is the versioned machine-readable flight-recorder output: a
// run manifest (shared with fred-metrics artifacts) plus one cell per
// recorded simulation, in cell order.
type Artifact struct {
	Schema   string           `json:"schema"`
	Manifest metrics.Manifest `json:"manifest"`
	Cells    []Cell           `json:"cells"`
}

// Snapshot freezes a recorder into its artifact cell. The encoding is
// fully determined by the recorder state: series in probe-registration
// order, samples in time order.
func (r *Recorder) Snapshot() Cell {
	c := Cell{Label: r.label, IntervalS: r.interval, Decimations: r.decimations}
	for i, p := range r.probes {
		sd := SeriesData{Name: p.Name, Unit: p.Unit, Samples: make([][2]float64, len(r.times))}
		for j, t := range r.times {
			sd.Samples[j] = [2]float64{t, r.vals[i][j]}
		}
		c.Series = append(c.Series, sd)
	}
	return c
}

// Export wraps recorder snapshots into an artifact, stamping the
// manifest's engine version and canonical config hash.
func Export(m metrics.Manifest, cells []Cell) *Artifact {
	return &Artifact{Schema: Schema, Manifest: m.Stamp(), Cells: cells}
}

// Encode renders the artifact as indented JSON with a trailing
// newline. Encoding uses only structs and slices (no maps), so the
// bytes are a pure function of the artifact — the basis of the
// byte-identical-at-every-pool-size guarantee.
func (a *Artifact) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses an artifact and validates its schema family.
func Decode(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("timeseries: parsing artifact: %w", err)
	}
	if !strings.HasPrefix(a.Schema, "fred-timeseries/") {
		return nil, fmt.Errorf("timeseries: not a fred-timeseries artifact (schema %q)", a.Schema)
	}
	return &a, nil
}

// WriteFile encodes the artifact to a file.
func (a *Artifact) WriteFile(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates an artifact from a file.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
