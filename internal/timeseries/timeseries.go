// Package timeseries is the simulated-time plane of the flight
// recorder: fixed-interval samplers driven by the sim scheduler clock
// that turn a simulation's internal load signals — event-heap depth,
// active flows, rate-engine fill work, delivered bytes, link
// utilization, cumulative critical-path blame — into ring-bounded
// (time, value) series, exported as a versioned fred-timeseries/v1
// artifact (see artifact.go).
//
// Determinism is the same constraint the metrics subsystem bends to:
//
//   - Sampling is driven purely by the simulated clock. The recorder
//     hangs off the scheduler's event hook (sim.AddEventHook) and
//     never schedules events of its own, so attaching it cannot
//     perturb event sequence numbers, tie-breaks, or any simulated
//     result — recorded runs and unrecorded runs simulate
//     identically.
//   - Samples land on fixed interval boundaries t = k·dt. When the
//     ring reaches capacity, every other sample is dropped and the
//     interval doubles (deterministic decimation), so a series covers
//     any horizon — microseconds or minutes — in a bounded number of
//     points, and the retained points are a pure function of the
//     simulated event times.
//   - Probes are registered in a deterministic order and evaluated in
//     registration order at each boundary; export iterates ordered
//     slices, never maps. Per-cell recorders merge through a
//     slot-reserving Collector, so the merged artifact is
//     byte-identical at every worker-pool size.
//
// The package depends only on sim (and metrics, for the shared run
// manifest); netsim and the experiment session depend on it, the same
// layering as trace.Tracer and critpath.Recorder.
package timeseries

import (
	"fmt"

	"github.com/wafernet/fred/internal/sim"
)

// DefaultInterval is the initial sampling interval in simulated
// seconds. It is deliberately finer than any study's horizon;
// decimation coarsens it geometrically as the run outgrows the ring.
const DefaultInterval = 1e-6

// DefaultCapacity is the per-series sample capacity. When a recorder
// reaches it, every other sample is dropped and the interval doubles.
const DefaultCapacity = 512

// Probe is one sampled quantity: a name, a unit label and a function
// returning the current value. Probe functions must be pure reads of
// simulator state — they run inside the scheduler's event hook and
// must not mutate anything.
type Probe struct {
	Name string
	Unit string
	Fn   func() float64
}

// Config sizes a Recorder.
type Config struct {
	// Interval is the initial sampling interval in simulated seconds
	// (DefaultInterval when zero).
	Interval float64
	// Capacity is the per-series ring capacity (DefaultCapacity when
	// zero). Must be at least 2 so decimation can make progress.
	Capacity int
}

// Recorder samples a set of probes at fixed simulated-time intervals
// into parallel series sharing one time base. It is single-goroutine,
// like the simulators that feed it: one recorder belongs to one
// scheduler.
type Recorder struct {
	label    string
	interval float64
	capacity int

	probes []Probe
	times  []float64   // shared sample timestamps, one per retained sample
	vals   [][]float64 // per-probe values, indexed [probe][sample]

	next        float64 // next un-recorded interval boundary
	decimations int
	finished    bool
}

// NewRecorder returns an empty recorder with the given shape.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Interval <= 0 || cfg.Capacity < 2 {
		panic(fmt.Sprintf("timeseries: invalid config interval=%g capacity=%d",
			cfg.Interval, cfg.Capacity))
	}
	return &Recorder{interval: cfg.Interval, capacity: cfg.Capacity}
}

// SetLabel names the simulation this recorder watches (conventionally
// the system under test); the label becomes the artifact cell label.
func (r *Recorder) SetLabel(label string) { r.label = label }

// Label returns the cell label.
func (r *Recorder) Label() string { return r.label }

// Interval returns the current (possibly decimated) sampling interval.
func (r *Recorder) Interval() float64 { return r.interval }

// Probe registers a sampled quantity. All probes must be registered
// before the first sample lands; registering later panics, because the
// new series would miss the shared time base's earlier points.
func (r *Recorder) Probe(name, unit string, fn func() float64) {
	if fn == nil {
		panic("timeseries: nil probe for " + name)
	}
	if len(r.times) > 0 {
		panic("timeseries: probe " + name + " registered after sampling began")
	}
	r.probes = append(r.probes, Probe{Name: name, Unit: unit, Fn: fn})
	r.vals = append(r.vals, nil)
}

// AttachScheduler registers the scheduler-load probes (event-heap
// depth and cumulative fired count) and chains the recorder's sampler
// onto the scheduler's event hook. Call it once, before the run.
func (r *Recorder) AttachScheduler(s *sim.Scheduler) {
	r.Probe("sched/pending", "", func() float64 { return float64(s.Pending()) })
	r.Probe("sched/fired", "", func() float64 { return float64(s.Fired()) })
	s.AddEventHook(func(now sim.Time, fired uint64) { r.Tick(now) })
}

// Tick records every interval boundary at or before now that has not
// been recorded yet. The recorded value is the probe state as of the
// call — in a discrete-event simulation state is piecewise-constant
// between events, so sampling at the first event at-or-after each
// boundary observes exactly the state that held across it (modulo the
// triggering event itself, a one-event skew the doc comments own up
// to). Boundaries are multiples of the current interval, so the
// retained sample times are reproducible run to run.
func (r *Recorder) Tick(now float64) {
	if r.finished || now < r.next {
		return
	}
	// One probe evaluation covers every boundary crossed by this event:
	// nothing changes between boundaries without an event in between.
	r.sampleUpTo(now, r.eval())
}

// Finish records the final boundary state at the end of the run (the
// last interval boundary at or before end, plus a closing sample at
// end itself when it is off-boundary) and freezes the recorder.
// Idempotent.
func (r *Recorder) Finish(end float64) {
	if r.finished {
		return
	}
	cur := r.eval()
	r.sampleUpTo(end, cur)
	if n := len(r.times); n == 0 || r.times[n-1] < end {
		r.append(end, cur)
	}
	r.finished = true
}

// eval samples every probe in registration order.
func (r *Recorder) eval() []float64 {
	cur := make([]float64, len(r.probes))
	for i, p := range r.probes {
		cur[i] = p.Fn()
	}
	return cur
}

// sampleUpTo records cur at every pending interval boundary ≤ limit,
// decimating whenever the ring fills: every other retained sample is
// dropped and the interval doubles, so capacity bounds memory while
// the series keeps covering the whole horizon. Decimation re-aligns
// the next boundary onto the coarser grid, so a long event gap settles
// into O(capacity · log(gap/interval)) work, not one sample per fine
// boundary.
func (r *Recorder) sampleUpTo(limit float64, cur []float64) {
	for limit >= r.next {
		if len(r.times) >= r.capacity {
			r.decimate()
			continue // r.next moved onto the coarser grid; re-test
		}
		r.append(r.next, cur)
		r.next += r.interval
	}
}

// append adds one sample column at time t.
func (r *Recorder) append(t float64, cur []float64) {
	r.times = append(r.times, t)
	for i := range r.vals {
		r.vals[i] = append(r.vals[i], cur[i])
	}
}

// decimate halves the retained samples (keeping even indices, i.e.
// multiples of the doubled interval) and doubles the interval.
func (r *Recorder) decimate() {
	keep := 0
	for i := 0; i < len(r.times); i += 2 {
		r.times[keep] = r.times[i]
		for p := range r.vals {
			r.vals[p][keep] = r.vals[p][i]
		}
		keep++
	}
	r.times = r.times[:keep]
	for p := range r.vals {
		r.vals[p] = r.vals[p][:keep]
	}
	r.interval *= 2
	r.decimations++
	// Re-align the next boundary to the coarser grid.
	if n := len(r.times); n > 0 {
		r.next = r.times[n-1] + r.interval
	}
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int { return len(r.times) }

// Times returns the shared sample timestamps (aliased, do not mutate).
func (r *Recorder) Times() []float64 { return r.times }

// Values returns probe i's retained samples (aliased, do not mutate).
func (r *Recorder) Values(i int) []float64 { return r.vals[i] }

// Probes returns the registered probes in registration order.
func (r *Recorder) Probes() []Probe { return r.probes }

// Decimations returns how many times the ring halved.
func (r *Recorder) Decimations() int { return r.decimations }
