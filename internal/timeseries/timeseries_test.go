package timeseries

import (
	"bytes"
	"math"
	"testing"

	"github.com/wafernet/fred/internal/metrics"
	"github.com/wafernet/fred/internal/sim"
)

// TestTickSamplesBoundaries: samples land on interval multiples, one
// value per crossed boundary, holding the piecewise-constant state.
func TestTickSamplesBoundaries(t *testing.T) {
	r := NewRecorder(Config{Interval: 1, Capacity: 64})
	v := 10.0
	r.Probe("x", "", func() float64 { return v })

	r.Tick(0) // boundary 0
	v = 20
	r.Tick(2.5) // boundaries 1, 2 — both see the state at the tick
	v = 30
	r.Tick(2.7) // no new boundary
	r.Finish(4) // boundaries 3, 4 (4 is on-grid: no extra closing sample)

	wantT := []float64{0, 1, 2, 3, 4}
	wantV := []float64{10, 20, 20, 30, 30}
	if r.Len() != len(wantT) {
		t.Fatalf("Len = %d, want %d (times %v)", r.Len(), len(wantT), r.Times())
	}
	for i := range wantT {
		if r.Times()[i] != wantT[i] || r.Values(0)[i] != wantV[i] {
			t.Errorf("sample %d = (%g, %g), want (%g, %g)",
				i, r.Times()[i], r.Values(0)[i], wantT[i], wantV[i])
		}
	}
}

// TestFinishClosingSample: an off-boundary end time gets one closing
// sample at the end itself, and Finish is idempotent.
func TestFinishClosingSample(t *testing.T) {
	r := NewRecorder(Config{Interval: 1, Capacity: 64})
	r.Probe("x", "", func() float64 { return 1 })
	r.Tick(0)
	r.Finish(2.5)
	r.Finish(9) // frozen: must not extend
	want := []float64{0, 1, 2, 2.5}
	if got := r.Times(); len(got) != len(want) {
		t.Fatalf("times = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("times = %v, want %v", got, want)
			}
		}
	}
	r.Tick(7) // also frozen
	if r.Len() != 4 {
		t.Errorf("Tick after Finish extended the series to %d samples", r.Len())
	}
}

// TestDecimation: filling past capacity halves the ring and doubles
// the interval; retained times stay on the coarser grid and the series
// still covers the whole horizon.
func TestDecimation(t *testing.T) {
	r := NewRecorder(Config{Interval: 1, Capacity: 8})
	n := 0.0
	r.Probe("n", "", func() float64 { n++; return n })
	for i := 0; i <= 100; i++ {
		r.Tick(float64(i))
	}
	if r.Decimations() == 0 {
		t.Fatal("no decimation after 101 boundaries into a capacity-8 ring")
	}
	if r.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", r.Len())
	}
	iv := r.Interval()
	if want := math.Pow(2, float64(r.Decimations())); iv != want {
		t.Errorf("interval = %g after %d decimations, want %g", iv, r.Decimations(), want)
	}
	times := r.Times()
	if times[0] != 0 {
		t.Errorf("first retained sample at %g, want 0", times[0])
	}
	for i, ts := range times {
		if math.Mod(ts, iv) != 0 {
			t.Errorf("sample %d at %g is off the %g grid", i, ts, iv)
		}
		if i > 0 && ts <= times[i-1] {
			t.Errorf("times not strictly increasing at %d: %v", i, times)
		}
	}
	if last := times[len(times)-1]; last < 100-2*iv {
		t.Errorf("last retained sample %g does not reach the horizon 100 (interval %g)", last, iv)
	}
}

// TestLongGapCost: a single huge time jump must not do per-fine-boundary
// work — the probe is evaluated once per Tick, and decimation coarsens
// the grid geometrically.
func TestLongGapCost(t *testing.T) {
	r := NewRecorder(Config{Interval: 1e-6, Capacity: 16})
	evals := 0
	r.Probe("x", "", func() float64 { evals++; return 0 })
	r.Tick(0)
	r.Tick(1e6) // 10^12 fine boundaries
	if evals != 2 {
		t.Errorf("probe evaluated %d times for 2 ticks, want 2", evals)
	}
	if r.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity", r.Len())
	}
}

// TestProbeAfterSamplingPanics: the shared time base cannot absorb a
// late probe.
func TestProbeAfterSamplingPanics(t *testing.T) {
	r := NewRecorder(Config{Interval: 1, Capacity: 8})
	r.Probe("a", "", func() float64 { return 0 })
	r.Tick(0)
	defer func() {
		if recover() == nil {
			t.Error("late Probe did not panic")
		}
	}()
	r.Probe("b", "", func() float64 { return 0 })
}

// TestAttachScheduler: the recorder samples off the scheduler hook
// without perturbing the event sequence, and chains with a prior hook.
func TestAttachScheduler(t *testing.T) {
	s := sim.NewScheduler()
	prior := 0
	s.SetEventHook(func(now sim.Time, fired uint64) { prior++ })
	r := NewRecorder(Config{Interval: 1, Capacity: 64})
	r.AttachScheduler(s)

	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(float64(i), func() { order = append(order, i) })
	}
	end := s.Run()
	r.Finish(end)

	for i, got := range order {
		if got != i {
			t.Fatalf("event order perturbed: %v", order)
		}
	}
	if prior != 5 {
		t.Errorf("prior hook ran %d times, want 5 (AddEventHook must chain)", prior)
	}
	if r.Len() == 0 {
		t.Fatal("no samples recorded off the scheduler hook")
	}
	// Probe 0 is sched/pending, probe 1 is sched/fired.
	if got := r.Probes()[1].Name; got != "sched/fired" {
		t.Fatalf("probe 1 = %q, want sched/fired", got)
	}
	fired := r.Values(1)
	if last := fired[len(fired)-1]; last != 5 {
		t.Errorf("final sched/fired sample = %g, want 5", last)
	}
}

// TestArtifactRoundTrip: Encode/Decode preserve the cells, and the
// schema gate rejects foreign artifacts.
func TestArtifactRoundTrip(t *testing.T) {
	r := NewRecorder(Config{Interval: 1, Capacity: 8})
	r.SetLabel("Fred-D")
	r.Probe("x", "B", func() float64 { return 42 })
	r.Tick(0)
	r.Finish(2)

	art := Export(metrics.Manifest{Tool: "test"}, []Cell{r.Snapshot()})
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q, want %q", back.Schema, Schema)
	}
	if len(back.Cells) != 1 || back.Cells[0].Label != "Fred-D" {
		t.Fatalf("cells = %+v", back.Cells)
	}
	s := back.Cells[0].Series[0]
	if s.Name != "x" || s.Unit != "B" || len(s.Samples) != 3 || s.Samples[0][1] != 42 {
		t.Errorf("series = %+v", s)
	}
	if _, err := Decode([]byte(`{"schema":"fred-metrics/v1"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	// Re-encoding is byte-stable.
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoded artifact differs")
	}
}

// TestCollectorSlotOrder: slots fold in reservation order no matter
// the fill order.
func TestCollectorSlotOrder(t *testing.T) {
	mk := func(label string) *Recorder {
		r := NewRecorder(Config{Interval: 1, Capacity: 8})
		r.SetLabel(label)
		return r
	}
	c := NewCollector()
	s0 := c.Reserve()
	s1 := c.Reserve()
	c.Fill(s1, mk("b"))
	c.Fill(s0, mk("a"))
	c.Append(mk("c"))
	var got []string
	for _, cell := range c.Cells() {
		got = append(got, cell.Label)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cells = %v, want %v", got, want)
		}
	}
}
