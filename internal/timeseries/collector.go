package timeseries

import "sync"

// Collector accumulates recorder cells produced by concurrent
// experiment cells while guaranteeing a deterministic merge order —
// the same slot-reservation pattern as metrics.Collector and
// critpath.Collector: a producer reserves an ordered slot up front (in
// work-issue order) and fills it whenever its cell completes; Cells
// folds the slots in reservation order, so the exported artifact is
// byte-identical at every worker-pool size.
//
// All methods are safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	slots [][]*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reserve allocates the next ordered slot and returns its index.
func (c *Collector) Reserve() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots = append(c.slots, nil)
	return len(c.slots) - 1
}

// Fill appends recorders to a previously reserved slot. It may be
// called several times; recorders accumulate within the slot in call
// order.
func (c *Collector) Fill(slot int, recs ...*Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[slot] = append(c.slots[slot], recs...)
}

// Append reserves a slot and fills it in one step — the sequential
// producer's convenience.
func (c *Collector) Append(recs ...*Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots = append(c.slots, recs)
}

// Recorders returns every collected recorder, flattened in slot order.
func (c *Collector) Recorders() []*Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Recorder
	for _, s := range c.slots {
		out = append(out, s...)
	}
	return out
}

// Cells snapshots every collected recorder, in slot order.
func (c *Collector) Cells() []Cell {
	var out []Cell
	for _, r := range c.Recorders() {
		out = append(out, r.Snapshot())
	}
	return out
}
