package linklayer

import (
	"testing"
	"testing/quick"

	"github.com/wafernet/fred/internal/sim"
)

func run(t *testing.T, cfg Config, vc VC, bytes float64) (*Link, float64) {
	t.Helper()
	sched := sim.NewScheduler()
	l := New(sched, cfg)
	var done sim.Time = -1
	l.Send(vc, bytes, func() { done = sched.Now() })
	sched.Run()
	if done < 0 {
		t.Fatalf("transfer of %g bytes never completed (stats %+v)", bytes, l.Stats())
	}
	return l, done
}

func TestLineRateWithPaperBuffer(t *testing.T) {
	// 24 KB per-VC buffer = BW × RTT sustains full 3 TB/s.
	cfg := DefaultConfig()
	const bytes = 8 * 1024 * 1024
	l, done := run(t, cfg, VCMP, bytes)
	ideal := bytes / cfg.Bandwidth
	if done > ideal*1.05 {
		t.Fatalf("transfer took %.3gs, ideal %.3gs — buffer does not sustain line rate", done, ideal)
	}
	if l.Stats().Retransmissions != 0 {
		t.Fatalf("unexpected retransmissions: %+v", l.Stats())
	}
}

func TestSmallBufferThrottles(t *testing.T) {
	// A buffer below BW×RTT must reduce throughput: the sender stalls
	// waiting for credits.
	cfg := DefaultConfig()
	cfg.DataBuffer = DataPacketBytes // one packet of buffering
	const bytes = 8 * 1024 * 1024
	_, done := run(t, cfg, VCMP, bytes)
	ideal := bytes / cfg.Bandwidth
	if done < ideal*1.5 {
		t.Fatalf("one-packet buffer finished in %.3gs vs ideal %.3gs; expected a credit stall", done, ideal)
	}
}

func TestBufferForLineRateRule(t *testing.T) {
	// The paper's 24 KB sizing covers the line-rate requirement at the
	// wafer's credit-loop latency.
	need := BufferForLineRate(DefaultLinkBW, DefaultLinkLatency)
	if need > DataVCBufferBytes {
		t.Fatalf("BufferForLineRate = %g exceeds the paper's 24 KB", need)
	}
	if need < DataVCBufferBytes*0.8 {
		t.Fatalf("BufferForLineRate = %g; the 24 KB choice would be wasteful", need)
	}
}

func TestAckOverheadUnderOnePercent(t *testing.T) {
	// Cumulative ACK per 16 × 4 KB packets: 512 B / 65 KB ≈ 0.78%.
	cfg := DefaultConfig()
	l, _ := run(t, cfg, VCDP, 64*1024*1024)
	if ov := l.Stats().AckOverhead(); ov >= 0.01 {
		t.Fatalf("ack overhead %.3f%% ≥ 1%% (Section 6.2.3 bound)", ov*100)
	}
}

func TestExactlyOnceDeliveryWithoutLoss(t *testing.T) {
	cfg := DefaultConfig()
	const bytes = 1 << 20
	l, _ := run(t, cfg, VCMP, bytes)
	wantPackets := uint64(bytes / DataPacketBytes)
	if got := l.Delivered(VCMP); got != wantPackets {
		t.Fatalf("delivered %d packets, want %d", got, wantPackets)
	}
	if g := l.Stats().GoodputBytes; g != bytes {
		t.Fatalf("goodput %g, want %g", g, float64(bytes))
	}
}

func TestGoBackNRecoversFromLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossEvery = 7 // drop every 7th transmission
	const bytes = 2 << 20
	l, _ := run(t, cfg, VCMP, bytes)
	st := l.Stats()
	if st.DroppedPackets == 0 {
		t.Fatal("loss injection did not fire")
	}
	if st.Retransmissions == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	if st.GoodputBytes != bytes {
		t.Fatalf("goodput %g, want %g after recovery", st.GoodputBytes, float64(bytes))
	}
	wantPackets := uint64(bytes / DataPacketBytes)
	if got := l.Delivered(VCMP); got != wantPackets {
		t.Fatalf("delivered %d packets, want %d", got, wantPackets)
	}
}

func TestTailDropRecoveredByTimeout(t *testing.T) {
	// Drop the very last packet: no successor exposes the gap, so the
	// sender's timeout must recover it.
	cfg := DefaultConfig()
	const packets = 8
	cfg.LossEvery = packets // only the final transmission drops
	l, _ := run(t, cfg, VCMP, packets*DataPacketBytes)
	if l.Delivered(VCMP) != packets {
		t.Fatalf("delivered %d packets, want %d", l.Delivered(VCMP), packets)
	}
	if l.Stats().Retransmissions == 0 {
		t.Fatal("timeout retransmission did not fire")
	}
}

func TestNackCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossEvery = 5
	l, _ := run(t, cfg, VCMP, 1<<20)
	st := l.Stats()
	if st.NackPackets == 0 {
		t.Fatal("drops produced no NACKs")
	}
	if st.NackPackets > st.DroppedPackets+2 {
		t.Fatalf("per-gap NACK suppression failed: %d NACKs for %d drops",
			st.NackPackets, st.DroppedPackets)
	}
}

func TestVCPriorityMPFirst(t *testing.T) {
	// With MP and DP both backlogged, the MP VC must drain first:
	// step the scheduler and record when each VC completes.
	sched := sim.NewScheduler()
	l := New(sched, DefaultConfig())
	l.Send(VCDP, 512*1024, nil)
	l.Send(VCMP, 512*1024, nil)
	var mpAt, dpAt sim.Time
	const packets = 512 * 1024 / DataPacketBytes
	for sched.Step() {
		if mpAt == 0 && l.Delivered(VCMP) == packets {
			mpAt = sched.Now()
		}
		if dpAt == 0 && l.Delivered(VCDP) == packets {
			dpAt = sched.Now()
		}
	}
	if mpAt == 0 || dpAt == 0 {
		t.Fatalf("VCs did not drain: MP %d, DP %d", l.Delivered(VCMP), l.Delivered(VCDP))
	}
	if mpAt >= dpAt {
		t.Fatalf("MP (prio) finished at %g, DP at %g; MP must win the link", mpAt, dpAt)
	}
}

func TestDrainRateBackpressure(t *testing.T) {
	// A slow receiver throttles the sender via credits to its drain
	// rate.
	cfg := DefaultConfig()
	cfg.DrainRate = cfg.Bandwidth / 4
	const bytes = 4 << 20
	_, done := run(t, cfg, VCPP, bytes)
	ideal := bytes / cfg.DrainRate
	if done < ideal*0.95 {
		t.Fatalf("finished in %.3gs, below drain-rate bound %.3gs", done, ideal)
	}
	if done > ideal*1.3 {
		t.Fatalf("finished in %.3gs, far above drain-rate bound %.3gs", done, ideal)
	}
}

func TestControlVCReserved(t *testing.T) {
	sched := sim.NewScheduler()
	l := New(sched, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Send on control VC did not panic")
		}
	}()
	l.Send(VCControl, 1024, nil)
}

func TestBadConfigPanics(t *testing.T) {
	sched := sim.NewScheduler()
	for _, cfg := range []Config{
		{Bandwidth: 0, DataBuffer: 1, CtrlBuffer: 1},
		{Bandwidth: 1, DataBuffer: 0, CtrlBuffer: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(sched, cfg)
		}()
	}
}

func TestVCStrings(t *testing.T) {
	if VCControl.String() != "ctrl" || VCMP.String() != "MP" || VCDP.String() != "DP" || VCPP.String() != "PP" {
		t.Fatal("VC names wrong")
	}
	if VCControl.bufferBytes() != ControlVCBufferBytes || VCMP.bufferBytes() != DataVCBufferBytes {
		t.Fatal("VC buffer sizes wrong")
	}
}

// Property: for any loss pattern and message size, every packet is
// delivered exactly once, in order, with correct goodput.
func TestPropertyReliableDelivery(t *testing.T) {
	f := func(lossSel, sizeSel uint8) bool {
		cfg := DefaultConfig()
		cfg.LossEvery = int(lossSel%17) + 3
		packets := int(sizeSel%200) + 1
		bytes := float64(packets) * DataPacketBytes
		sched := sim.NewScheduler()
		l := New(sched, cfg)
		completed := false
		l.Send(VCMP, bytes, func() { completed = true })
		sched.Run()
		return completed &&
			l.Delivered(VCMP) == uint64(packets) &&
			l.Stats().GoodputBytes == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: goodput never exceeds wire bytes, and wire bytes grow with
// loss (retransmission overhead is visible and bounded).
func TestPropertyRetransmissionAccounting(t *testing.T) {
	f := func(lossSel uint8) bool {
		cfg := DefaultConfig()
		loss := int(lossSel%11) + 4
		cfg.LossEvery = loss
		sched := sim.NewScheduler()
		l := New(sched, cfg)
		ok := false
		const bytes = 256 * DataPacketBytes
		l.Send(VCDP, bytes, func() { ok = true })
		sched.Run()
		st := l.Stats()
		if !ok || st.GoodputBytes != bytes {
			return false
		}
		return st.DataBytesOnWire >= bytes && st.Retransmissions > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
