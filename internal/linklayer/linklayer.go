// Package linklayer is a packet-level model of FRED's link protocol
// (Section 6.2.3 of the paper): Virtual Cut-Through switching with
// credit-based backpressure, four virtual circuits per port (three
// data VCs dedicated to the MP, DP and PP communication classes plus
// one control VC for ACK/NACK traffic), 4 KB data packets and 512 B
// control packets built from 512 B flits, Go-Back-N retransmission
// with one cumulative ACK per 16 data packets, and 24 KB per-VC data
// buffers sized to link_BW × RTT so a freshly resumed (preempted)
// communication can immediately send at full link bandwidth.
//
// The flow-level simulator (internal/netsim) abstracts all of this
// away behind fair-shared link bandwidth; this package exists to
// validate the protocol parameters the paper chose: that the buffer
// sizing sustains line rate, that the cumulative-ACK policy keeps
// acknowledgement overhead under 1% of link bandwidth, and that
// Go-Back-N recovers exactly-once in-order delivery under loss.
package linklayer

import (
	"fmt"

	"github.com/wafernet/fred/internal/sim"
)

// Protocol constants from Section 6.2.3.
const (
	// DataPacketBytes is the data packet size (4 KB).
	DataPacketBytes = 4096.0
	// ControlPacketBytes is the ACK/NACK packet size (512 B).
	ControlPacketBytes = 512.0
	// FlitBytes is the flit size (512 B).
	FlitBytes = 512.0
	// HeaderBytes is the packet header (6 B, large sequence numbers).
	HeaderBytes = 6.0
	// AckInterval is the cumulative-ACK period in data packets.
	AckInterval = 16
	// DataVCBufferBytes is the per-data-VC input buffer (24 KB =
	// link_BW × RTT at 3 TB/s).
	DataVCBufferBytes = 24 * 1024.0
	// ControlVCBufferBytes is the control-VC input buffer (2 KB).
	ControlVCBufferBytes = 2 * 1024.0
	// DefaultLinkBW is the NPU port bandwidth (3 TB/s).
	DefaultLinkBW = 3e12
	// DefaultLinkLatency is the per-hop propagation delay of the
	// credit loop (the paper's 24 KB = link_BW × RTT sizing implies an
	// ~8 ns loop at 3 TB/s; 3 ns each way leaves room for one packet's
	// serialization).
	DefaultLinkLatency = 3e-9
)

// VC identifies a virtual circuit on a port.
type VC int

// The four VCs of Section 6.2.3, in descending scheduling priority.
const (
	VCControl VC = iota // ACK/NACK and control messages
	VCMP                // model-parallel data
	VCPP                // pipeline-parallel data
	VCDP                // data-parallel data
	NumVCs
)

func (v VC) String() string {
	switch v {
	case VCControl:
		return "ctrl"
	case VCMP:
		return "MP"
	case VCPP:
		return "PP"
	case VCDP:
		return "DP"
	}
	return fmt.Sprintf("VC(%d)", int(v))
}

// bufferBytes returns the VC's input-buffer capacity.
func (v VC) bufferBytes() float64 {
	if v == VCControl {
		return ControlVCBufferBytes
	}
	return DataVCBufferBytes
}

// Packet is one link-layer packet.
type Packet struct {
	VC      VC
	Seq     uint64
	Bytes   float64
	Control bool
	// Ack/Nack mark control packets; AckSeq is cumulative.
	Ack, Nack bool
	AckSeq    uint64
}

// Config parameterizes a Link.
type Config struct {
	Bandwidth  float64 // bytes/second
	Latency    float64 // one-way propagation, seconds
	DataBuffer float64 // per-data-VC receiver buffer, bytes
	CtrlBuffer float64
	// DrainRate is the receiver's consumption rate (bytes/second);
	// 0 means consume instantly (sink).
	DrainRate float64
	// LossEvery drops every n-th data packet on first transmission
	// (0 disables loss injection). Retransmissions are never dropped,
	// mirroring a transient-fault model.
	LossEvery int
	// RetxTimeout is the sender's retransmission timeout; 0 selects a
	// generous default (64 packet times + 8 propagation delays). The
	// timeout covers the case Go-Back-N's NACK cannot: a dropped
	// packet with no successor to expose the gap.
	RetxTimeout float64
}

// retxTimeout returns the effective timeout.
func (c Config) retxTimeout() float64 {
	if c.RetxTimeout > 0 {
		return c.RetxTimeout
	}
	return 256*(DataPacketBytes+HeaderBytes)/c.Bandwidth + 64*c.Latency
}

// DefaultConfig returns the paper's link parameters with an instant
// sink.
func DefaultConfig() Config {
	return Config{
		Bandwidth:  DefaultLinkBW,
		Latency:    DefaultLinkLatency,
		DataBuffer: DataVCBufferBytes,
		CtrlBuffer: ControlVCBufferBytes,
	}
}

// Stats aggregates a link endpoint's counters.
type Stats struct {
	DataPacketsSent      uint64
	DataPacketsDelivered uint64 // in-order, exactly-once deliveries
	Retransmissions      uint64
	DroppedPackets       uint64
	AckPackets           uint64
	NackPackets          uint64
	DataBytesOnWire      float64 // includes retransmissions
	ControlBytesOnWire   float64
	GoodputBytes         float64 // exactly-once delivered payload
}

// AckOverhead returns control bytes as a fraction of data bytes on the
// wire — the quantity the paper bounds below 1%.
func (s Stats) AckOverhead() float64 {
	if s.DataBytesOnWire == 0 {
		return 0
	}
	return s.ControlBytesOnWire / s.DataBytesOnWire
}

// Link is a unidirectional data link with its reverse control channel,
// one sender and one receiver, implementing the Section 6.2.3
// protocol. It runs on a shared discrete-event scheduler.
type Link struct {
	cfg   Config
	sched *sim.Scheduler
	stats Stats

	// Sender state, per data VC.
	sendQ        [NumVCs][]float64 // unsent message bytes split into packets
	retxQ        [NumVCs][]Packet  // retransmissions, original sequence numbers
	nextSeq      [NumVCs]uint64    // next fresh sequence number
	ackedSeq     [NumVCs]uint64    // cumulative ack received (packets < ackedSeq delivered)
	inFlight     [NumVCs][]Packet  // sent, unacked (the Go-Back-N window)
	credits      [NumVCs]float64   // receiver buffer space known free
	sending      bool
	sentCount    [NumVCs]uint64 // for loss injection
	highestSent  [NumVCs]uint64 // to classify retransmissions
	lastActivity [NumVCs]sim.Time
	watchdog     [NumVCs]bool
	onComplete   func()

	// Receiver state.
	expectSeq  [NumVCs]uint64
	buffered   [NumVCs]float64
	nacked     [NumVCs]bool // NACK outstanding for current gap
	delivered  [NumVCs]uint64
	sinceAck   [NumVCs]int
	drainUntil [NumVCs]sim.Time // receiver consumes packets serially
}

// New creates a link on the scheduler.
func New(sched *sim.Scheduler, cfg Config) *Link {
	if cfg.Bandwidth <= 0 {
		panic("linklayer: bandwidth must be positive")
	}
	if cfg.DataBuffer <= 0 || cfg.CtrlBuffer <= 0 {
		panic("linklayer: buffers must be positive")
	}
	l := &Link{cfg: cfg, sched: sched}
	for vc := VC(0); vc < NumVCs; vc++ {
		if vc == VCControl {
			l.credits[vc] = cfg.CtrlBuffer
		} else {
			l.credits[vc] = cfg.DataBuffer
		}
	}
	return l
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() Stats { return l.stats }

// Delivered returns the packets delivered in order on a VC.
func (l *Link) Delivered(vc VC) uint64 { return l.delivered[vc] }

// Send enqueues a message of the given bytes on a data VC, segmented
// into 4 KB packets. onComplete fires when every packet of every
// message so far has been delivered and acknowledged.
func (l *Link) Send(vc VC, bytes float64, onComplete func()) {
	if vc == VCControl {
		panic("linklayer: control VC is reserved for ACK/NACK")
	}
	for bytes > 0 {
		p := DataPacketBytes
		if bytes < p {
			p = bytes
		}
		l.sendQ[vc] = append(l.sendQ[vc], p)
		bytes -= p
	}
	l.onComplete = onComplete
	l.pump()
}

// pump transmits the next packet if the wire is free, choosing the
// highest-priority VC with both queued data and credit.
// Retransmissions (with their original sequence numbers) go ahead of
// fresh packets.
func (l *Link) pump() {
	if l.sending {
		return
	}
	// Control traffic is generated at the receiver side and modelled
	// on the reverse channel; here we pick a data VC.
	for vc := VCMP; vc < NumVCs; vc++ {
		// Drop retransmissions that a racing cumulative ACK already
		// covered (their credits were restored at goBackN time, and
		// skipping them charges nothing).
		for len(l.retxQ[vc]) > 0 && l.retxQ[vc][0].Seq < l.ackedSeq[vc] {
			l.retxQ[vc] = l.retxQ[vc][1:]
		}
		if len(l.retxQ[vc]) > 0 {
			pkt := l.retxQ[vc][0]
			if l.credits[vc] < pkt.Bytes {
				continue
			}
			l.retxQ[vc] = l.retxQ[vc][1:]
			l.credits[vc] -= pkt.Bytes
			l.transmit(pkt)
			return
		}
		if len(l.sendQ[vc]) == 0 {
			continue
		}
		size := l.sendQ[vc][0]
		if l.credits[vc] < size {
			continue
		}
		l.sendQ[vc] = l.sendQ[vc][1:]
		l.credits[vc] -= size
		pkt := Packet{VC: vc, Seq: l.nextSeq[vc], Bytes: size}
		l.nextSeq[vc]++
		l.transmit(pkt)
		return
	}
}

// transmit serialises a packet onto the wire.
func (l *Link) transmit(pkt Packet) {
	l.sending = true
	wireBytes := pkt.Bytes + HeaderBytes
	txTime := wireBytes / l.cfg.Bandwidth
	l.stats.DataBytesOnWire += wireBytes
	l.stats.DataPacketsSent++
	isRetx := pkt.Seq < l.highestSent[pkt.VC]
	if isRetx {
		l.stats.Retransmissions++
	} else {
		l.highestSent[pkt.VC] = pkt.Seq + 1
	}
	l.sentCount[pkt.VC]++
	drop := false
	if !isRetx && l.cfg.LossEvery > 0 && l.sentCount[pkt.VC]%uint64(l.cfg.LossEvery) == 0 {
		drop = true
	}
	l.inFlight[pkt.VC] = append(l.inFlight[pkt.VC], pkt)
	l.lastActivity[pkt.VC] = l.sched.Now()
	l.armWatchdog(pkt.VC)
	l.sched.After(txTime, func() {
		l.sending = false
		if drop {
			l.stats.DroppedPackets++
		} else {
			p := pkt
			l.sched.After(l.cfg.Latency, func() { l.receive(p) })
		}
		l.pump()
	})
}

// receive handles packet arrival at the far end.
func (l *Link) receive(pkt Packet) {
	vc := pkt.VC
	if pkt.Seq < l.expectSeq[vc] {
		// Duplicate from a spurious or Go-Back-N retransmission: it
		// never occupies the buffer, so its credit returns right away,
		// and a fresh cumulative ACK resynchronises the sender.
		l.sched.After(l.cfg.Latency, func() {
			l.credits[vc] += pkt.Bytes
			l.lastActivity[vc] = l.sched.Now()
			l.pump()
		})
		l.sendControl(Packet{VC: vc, Control: true, Ack: true, AckSeq: l.expectSeq[vc]})
		return
	}
	if pkt.Seq > l.expectSeq[vc] {
		// A gap: Go-Back-N discards and NACKs the expected sequence
		// (once per gap).
		if !l.nacked[vc] {
			l.nacked[vc] = true
			l.sendControl(Packet{VC: vc, Control: true, Nack: true, AckSeq: l.expectSeq[vc]})
		}
		return
	}
	l.nacked[vc] = false
	l.expectSeq[vc]++
	l.delivered[vc]++
	l.stats.DataPacketsDelivered++
	l.stats.GoodputBytes += pkt.Bytes
	l.buffered[vc] += pkt.Bytes

	drain := func() {
		l.buffered[vc] -= pkt.Bytes
		// Credit return travels on the reverse channel.
		l.sched.After(l.cfg.Latency, func() {
			l.credits[vc] += pkt.Bytes
			l.lastActivity[vc] = l.sched.Now()
			l.pump()
		})
	}
	if l.cfg.DrainRate > 0 {
		// The receiver consumes packets serially at its drain rate.
		start := l.sched.Now()
		if l.drainUntil[vc] > start {
			start = l.drainUntil[vc]
		}
		l.drainUntil[vc] = start + pkt.Bytes/l.cfg.DrainRate
		l.sched.At(l.drainUntil[vc], drain)
	} else {
		drain()
	}

	l.sinceAck[vc]++
	if l.sinceAck[vc] >= AckInterval {
		l.sinceAck[vc] = 0
		l.sendControl(Packet{VC: vc, Control: true, Ack: true, AckSeq: l.expectSeq[vc]})
	} else if l.windowDrained(vc) {
		// Tail ACK: flush the final partial window so the sender can
		// complete.
		l.sendControl(Packet{VC: vc, Control: true, Ack: true, AckSeq: l.expectSeq[vc]})
	}
}

// windowDrained reports whether the receiver has seen every packet the
// sender has queued so far (tail condition).
func (l *Link) windowDrained(vc VC) bool {
	return len(l.sendQ[vc]) == 0 && l.expectSeq[vc] == l.nextSeq[vc]
}

// sendControl models an ACK/NACK on the reverse control channel.
func (l *Link) sendControl(pkt Packet) {
	l.stats.ControlBytesOnWire += ControlPacketBytes
	if pkt.Ack {
		l.stats.AckPackets++
	}
	if pkt.Nack {
		l.stats.NackPackets++
	}
	l.sched.After(ControlPacketBytes/l.cfg.Bandwidth+l.cfg.Latency, func() { l.handleControl(pkt) })
}

// handleControl processes an ACK/NACK at the sender.
func (l *Link) handleControl(pkt Packet) {
	vc := pkt.VC
	l.lastActivity[vc] = l.sched.Now()
	if pkt.Ack {
		// Cumulative: drop acknowledged packets from the window.
		for len(l.inFlight[vc]) > 0 && l.inFlight[vc][0].Seq < pkt.AckSeq {
			l.inFlight[vc] = l.inFlight[vc][1:]
		}
		if pkt.AckSeq > l.ackedSeq[vc] {
			l.ackedSeq[vc] = pkt.AckSeq
		}
		if l.allComplete() && l.onComplete != nil {
			done := l.onComplete
			l.onComplete = nil
			done()
		}
		return
	}
	// NACK: Go-Back-N — retransmit everything from the NACKed
	// sequence. The paper forwards the NACK to every source port of
	// the flow; with a single sender that is this retransmission.
	l.goBackN(vc, pkt.AckSeq)
}

// armWatchdog starts the retransmission watchdog for a VC: if the
// window sees no activity (ACKs, credit returns or new transmissions)
// for a full timeout, Go-Back-N replays from the last cumulative ACK.
// This covers the case a NACK cannot: a dropped packet with no
// successor to expose the gap. Activity-based re-arming avoids
// spurious retransmissions when credit backpressure legitimately slows
// the ACK cadence.
func (l *Link) armWatchdog(vc VC) {
	if l.watchdog[vc] {
		return
	}
	l.watchdog[vc] = true
	timeout := l.cfg.retxTimeout()
	var fire func()
	fire = func() {
		if len(l.inFlight[vc]) == 0 && len(l.sendQ[vc]) == 0 && len(l.retxQ[vc]) == 0 {
			l.watchdog[vc] = false
			return
		}
		idle := l.sched.Now() - l.lastActivity[vc]
		// The epsilon absorbs float64 round-off: an idle time one ulp
		// short of the timeout must count as expired, or the watchdog
		// re-arms with a sub-attosecond wait forever.
		if idle >= timeout*(1-1e-9) {
			l.lastActivity[vc] = l.sched.Now()
			l.goBackN(vc, l.ackedSeq[vc])
			l.sched.After(timeout, fire)
			return
		}
		l.sched.After(timeout-idle, fire)
	}
	l.sched.After(timeout, fire)
}

// goBackN queues every unacknowledged packet from the given sequence
// for retransmission with its original sequence number, restoring the
// credits their voided transmissions consumed.
func (l *Link) goBackN(vc VC, from uint64) {
	if from < l.ackedSeq[vc] {
		from = l.ackedSeq[vc]
	}
	// Deduplicate by sequence (a packet may sit in inFlight more than
	// once when an earlier retransmission is also outstanding).
	seen := make(map[uint64]bool, len(l.inFlight[vc]))
	for _, p := range l.retxQ[vc] {
		seen[p.Seq] = true
	}
	for _, p := range l.inFlight[vc] {
		if p.Seq < from {
			continue
		}
		l.credits[vc] += p.Bytes // this transmission's charge is void
		if !seen[p.Seq] {
			seen[p.Seq] = true
			l.retxQ[vc] = append(l.retxQ[vc], p)
		}
	}
	l.inFlight[vc] = l.inFlight[vc][:0]
	sortPacketsBySeq(l.retxQ[vc])
	l.pump()
}

// allComplete reports whether every queued packet on every VC has been
// delivered and acknowledged.
func (l *Link) allComplete() bool {
	for vc := VCMP; vc < NumVCs; vc++ {
		if len(l.sendQ[vc]) > 0 || len(l.retxQ[vc]) > 0 || l.ackedSeq[vc] != l.nextSeq[vc] {
			return false
		}
	}
	return true
}

// sortPacketsBySeq keeps retransmissions in sequence order (insertion
// sort; the queue is tiny).
func sortPacketsBySeq(ps []Packet) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Seq < ps[j-1].Seq; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// BufferForLineRate returns the minimum per-VC buffer that sustains
// full link bandwidth: bandwidth × round-trip propagation plus one
// maximum packet of serialization slack — the paper's link_BW × RTT
// = 24 KB rule at 3 TB/s.
func BufferForLineRate(bandwidth, latency float64) float64 {
	return bandwidth*2*latency + DataPacketBytes + HeaderBytes
}
