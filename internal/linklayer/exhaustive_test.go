package linklayer

import (
	"testing"

	"github.com/wafernet/fred/internal/sim"
)

// TestExhaustiveLossRecovery sweeps every (loss period, message size)
// combination in a broad window and requires bounded-step completion —
// the regression net for the Go-Back-N/watchdog state machine (a
// float64 round-off once livelocked the watchdog at loss=3,
// packets=189).
func TestExhaustiveLossRecovery(t *testing.T) {
	for loss := 3; loss <= 19; loss++ {
		for packets := 1; packets <= 200; packets++ {
			cfg := DefaultConfig()
			cfg.LossEvery = loss
			sched := sim.NewScheduler()
			l := New(sched, cfg)
			completed := false
			l.Send(VCMP, float64(packets)*DataPacketBytes, func() { completed = true })
			steps := 0
			for sched.Step() {
				steps++
				if steps > 2_000_000 {
					t.Fatalf("LIVELOCK loss=%d packets=%d (delivered %d, acked %d, next %d, inflight %d, retx %d, sendq %d)",
						loss, packets, l.delivered[VCMP], l.ackedSeq[VCMP], l.nextSeq[VCMP],
						len(l.inFlight[VCMP]), len(l.retxQ[VCMP]), len(l.sendQ[VCMP]))
				}
			}
			if !completed {
				t.Fatalf("DEADLOCK loss=%d packets=%d (delivered %d, acked %d, next %d)",
					loss, packets, l.delivered[VCMP], l.ackedSeq[VCMP], l.nextSeq[VCMP])
			}
		}
	}
}
