package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances one second per reading, so timestamps count clock
// reads — the determinism contract the engine is built around.
func fakeClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n-1) * time.Second)
	}
}

func TestEngineSnapshotAndETA(t *testing.T) {
	e := NewEngine(fakeClock()) // read 1: start at +0s
	e.StudyStarted("fig2", 3)
	c0 := e.CellStarted("fig2", 0)
	c1 := e.CellStarted("fig2", 1)
	c1.SetSimTime(0.5)
	c1.SetHorizon(2)

	s := e.Snapshot() // read 2: +1s
	if s.CellsTotal != 3 || s.CellsDone != 0 || s.ElapsedS != 1 || s.ETAS != -1 {
		t.Fatalf("initial snapshot = %+v", s)
	}
	if len(s.Running) != 2 || s.Running[1].SimTimeS != 0.5 || s.Running[1].HorizonS != 2 {
		t.Fatalf("running = %+v", s.Running)
	}

	e.CellFinished(c0, false) // read 3: +2s, 1/3 done → eta = 2/1 * 2 = 4
	s = e.Snapshot()          // read 4: +3s, eta = 3/1 * 2 = 6
	if s.CellsDone != 1 || s.ETAS != 6 {
		t.Fatalf("after one completion: %+v", s)
	}
	e.CellFinished(c1, true)
	s = e.Snapshot()
	if s.CellsDone != 2 || s.CellsFailed != 1 || len(s.Running) != 0 {
		t.Fatalf("after failure: %+v", s)
	}
	e.CellFinished(nil, false) // ignored
	if got := e.Snapshot().CellsDone; got != 2 {
		t.Fatalf("nil CellFinished counted: done = %d", got)
	}
}

// TestEngineOrderIndependent: the post-completion snapshot depends
// only on how many cells completed, not on which workers ran them or
// in what order they started — the property that makes the /progress
// golden identical at every -parallel width.
func TestEngineOrderIndependent(t *testing.T) {
	final := func(finishOrder []int) Snapshot {
		e := NewEngine(fakeClock())
		e.StudyStarted("golden", 4)
		cells := make([]*Cell, 4)
		for i := range cells {
			cells[i] = e.CellStarted("golden", i)
		}
		for _, i := range finishOrder {
			e.CellFinished(cells[i], false)
		}
		return e.Snapshot()
	}
	a := final([]int{0, 1, 2, 3})
	b := final([]int{3, 1, 0, 2})
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("snapshot depends on completion order:\n%s\n%s", aj, bj)
	}
}

func TestStatusLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewStatusLine(&buf, "fredsim")
	e := NewEngine(fakeClock())
	e.OnUpdate(l.Update)
	e.StudyStarted("fig2", 2)
	c0 := e.CellStarted("fig2", 0)
	c1 := e.CellStarted("fig2", 1)
	e.CellFinished(c0, false) // read 2: elapsed 1s, eta 1s
	e.CellFinished(c1, false) // read 3: elapsed 2s, eta 0s
	l.Done()

	got := buf.String()
	want := "\rfredsim: fig2 1/2 cells · elapsed 1.0s · eta 1.0s" +
		"\rfredsim: fig2 2/2 cells · elapsed 2.0s · eta 0.0s\n"
	if got != want {
		t.Errorf("status line:\n got %q\nwant %q", got, want)
	}

	// Done without any update stays silent.
	var empty bytes.Buffer
	NewStatusLine(&empty, "x").Done()
	if empty.Len() != 0 {
		t.Errorf("empty status line wrote %q", empty.String())
	}
}

func TestStatusLinePadsShrinkingLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewStatusLine(&buf, "t")
	l.Update(Snapshot{Study: "longer-study-name", CellsDone: 1, CellsTotal: 2, ETAS: -1})
	l.Update(Snapshot{Study: "s", CellsDone: 2, CellsTotal: 2, ETAS: -1})
	lines := strings.Split(buf.String(), "\r")
	if len(lines) != 3 {
		t.Fatalf("expected 2 renders, got %q", buf.String())
	}
	if len(lines[2]) < len(lines[1]) {
		t.Errorf("second render %q shorter than first %q — stale tail would remain", lines[2], lines[1])
	}
}

func TestHandlerProgressJSON(t *testing.T) {
	e := NewEngine(fakeClock())
	e.StudyStarted("fig2", 1)
	c := e.CellStarted("fig2", 0)
	e.CellFinished(c, false)
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Study != "fig2" || s.CellsDone != 1 || s.CellsTotal != 1 {
		t.Errorf("snapshot = %+v", s)
	}

	// The pprof index must be mounted too (the -debug-addr contract).
	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp2.StatusCode)
	}
	resp3, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(body), "fred.progress") {
		t.Errorf("/debug/vars missing fred.progress: %s", body)
	}
}

func TestHandlerSSEStream(t *testing.T) {
	e := NewEngine(fakeClock())
	e.StudyStarted("fig2", 2)
	c0 := e.CellStarted("fig2", 0)
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	readEvent := func() Snapshot {
		// SSE events are "data: {...}\n\n"; read up to the blank line.
		var line string
		buf := make([]byte, 1)
		for !strings.HasSuffix(line, "\n\n") {
			if _, err := resp.Body.Read(buf); err != nil {
				t.Fatalf("stream read: %v (got %q)", err, line)
			}
			line += string(buf)
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &s); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		return s
	}

	if s := readEvent(); s.CellsDone != 0 {
		t.Errorf("initial event = %+v", s)
	}
	e.CellFinished(c0, false)
	if s := readEvent(); s.CellsDone != 1 {
		t.Errorf("completion event = %+v", s)
	}
}

func TestStartServer(t *testing.T) {
	e := NewEngine(fakeClock())
	var buf bytes.Buffer
	addr, err := StartServer("127.0.0.1:0", e, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), addr) {
		t.Errorf("listen message %q does not name %s", buf.String(), addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/progress", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if _, err := StartServer("256.0.0.1:99999", e, nil); err == nil {
		t.Error("bad address accepted")
	}
}
