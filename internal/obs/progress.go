// Package obs is the wall-clock plane of the flight recorder: a
// progress engine that tracks an experiment session's cells as they
// run — completed/total counts, per-cell simulated time, an ETA — and
// surfaces them as a stderr status line, a JSON snapshot, and an SSE
// stream (see http.go for the -debug-addr endpoint).
//
// Unlike everything under internal/timeseries, this plane observes the
// host, not the simulation: its clock is wall time. Determinism is
// still engineered where tests need it — the clock is injectable, and
// the engine reads it only at construction and at cell completion, so
// with a fake clock that advances per call the k-th completion always
// observes the same timestamp no matter how a worker pool interleaves
// cell starts. The snapshot after the final cell is therefore
// byte-identical at every -parallel width.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is one observed progress state, JSON-encodable for the
// /progress endpoint and the SSE stream.
type Snapshot struct {
	// Study names the most recently started study.
	Study string `json:"study,omitempty"`
	// Studies counts the studies started so far.
	Studies int `json:"studies"`
	// CellsTotal / CellsDone / CellsFailed count experiment cells
	// across every study started so far.
	CellsTotal  int `json:"cells_total"`
	CellsDone   int `json:"cells_done"`
	CellsFailed int `json:"cells_failed,omitempty"`
	// ElapsedS is wall-clock seconds since the engine was created, as
	// of the snapshot's clock read.
	ElapsedS float64 `json:"elapsed_s"`
	// ETAS estimates the remaining wall-clock seconds by scaling
	// elapsed time per completed cell over the remaining cells; -1
	// until the first cell completes.
	ETAS float64 `json:"eta_s"`
	// Running lists the in-flight cells sorted by (study, cell), each
	// with its latest sampled simulated time (and horizon when known).
	Running []CellSnapshot `json:"running,omitempty"`
}

// CellSnapshot is one in-flight cell in a Snapshot.
type CellSnapshot struct {
	Study string `json:"study"`
	Cell  int    `json:"cell"`
	// SimTimeS is the cell's simulated clock as of the last sample the
	// scheduler hook pushed (0 until the first sample).
	SimTimeS float64 `json:"sim_time_s"`
	// HorizonS is the cell's simulated-time horizon when the study
	// declared one; 0 means unknown (most training cells run to
	// completion rather than to a deadline).
	HorizonS float64 `json:"horizon_s,omitempty"`
}

// Cell is a handle for one in-flight experiment cell. Its setters are
// safe to call from the cell's worker goroutine while other goroutines
// snapshot the engine.
type Cell struct {
	study   string
	index   int
	simTime atomic.Uint64 // float64 bits
	horizon atomic.Uint64 // float64 bits
}

// SetSimTime publishes the cell's current simulated clock. Called from
// a throttled scheduler event hook.
func (c *Cell) SetSimTime(t float64) {
	if c == nil {
		return
	}
	c.simTime.Store(math.Float64bits(t))
}

// SetHorizon publishes the cell's simulated-time horizon, for studies
// that run to a deadline rather than to completion.
func (c *Cell) SetHorizon(t float64) {
	if c == nil {
		return
	}
	c.horizon.Store(math.Float64bits(t))
}

// Engine aggregates cell progress. All methods are safe for concurrent
// use.
type Engine struct {
	now func() time.Time

	mu       sync.Mutex
	start    time.Time
	study    string
	studies  int
	total    int
	done     int
	failed   int
	running  []*Cell
	onUpdate []func(Snapshot)
}

// NewEngine returns an engine reading the given clock (nil means
// time.Now). The clock is read once here and once per cell completion
// — never per cell start — so a fake clock advancing one step per call
// produces the same completion timestamps at every worker-pool width.
func NewEngine(clock func() time.Time) *Engine {
	if clock == nil {
		clock = time.Now
	}
	return &Engine{now: clock, start: clock()}
}

// OnUpdate registers a callback invoked with a fresh snapshot after
// every cell completion — the hook the status line and the SSE stream
// hang off. Callbacks run sequentially under the engine's lock order
// (one at a time, in registration order) on the completing cell's
// goroutine; keep them fast.
func (e *Engine) OnUpdate(fn func(Snapshot)) {
	e.mu.Lock()
	e.onUpdate = append(e.onUpdate, fn)
	e.mu.Unlock()
}

// StudyStarted declares a study of n cells. Totals accumulate across
// studies, so a multi-study driver run (fredsim all) reports one
// overall completion count.
func (e *Engine) StudyStarted(study string, n int) {
	e.mu.Lock()
	e.study = study
	e.studies++
	e.total += n
	e.mu.Unlock()
}

// CellStarted registers an in-flight cell and returns its handle.
func (e *Engine) CellStarted(study string, cell int) *Cell {
	c := &Cell{study: study, index: cell}
	e.mu.Lock()
	e.running = append(e.running, c)
	e.mu.Unlock()
	return c
}

// CellFinished retires a cell, reads the clock, and notifies every
// OnUpdate callback with the post-completion snapshot. A nil cell is
// ignored.
func (e *Engine) CellFinished(c *Cell, failed bool) {
	if c == nil {
		return
	}
	e.mu.Lock()
	for i, rc := range e.running {
		if rc == c {
			e.running = append(e.running[:i], e.running[i+1:]...)
			break
		}
	}
	e.done++
	if failed {
		e.failed++
	}
	snap := e.snapshotLocked(e.now())
	cbs := e.onUpdate
	e.mu.Unlock()
	for _, fn := range cbs {
		fn(snap)
	}
}

// Snapshot reads the clock and returns the current progress state.
func (e *Engine) Snapshot() Snapshot {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(now)
}

// snapshotLocked assembles a snapshot under the lock for a given clock
// reading.
func (e *Engine) snapshotLocked(now time.Time) Snapshot {
	s := Snapshot{
		Study:       e.study,
		Studies:     e.studies,
		CellsTotal:  e.total,
		CellsDone:   e.done,
		CellsFailed: e.failed,
		ElapsedS:    now.Sub(e.start).Seconds(),
		ETAS:        -1,
	}
	if e.done > 0 {
		s.ETAS = s.ElapsedS / float64(e.done) * float64(e.total-e.done)
	}
	for _, c := range e.running {
		s.Running = append(s.Running, CellSnapshot{
			Study:    c.study,
			Cell:     c.index,
			SimTimeS: math.Float64frombits(c.simTime.Load()),
			HorizonS: math.Float64frombits(c.horizon.Load()),
		})
	}
	sort.Slice(s.Running, func(i, j int) bool {
		if s.Running[i].Study != s.Running[j].Study {
			return s.Running[i].Study < s.Running[j].Study
		}
		return s.Running[i].Cell < s.Running[j].Cell
	})
	return s
}

// StatusLine renders snapshots as a single self-overwriting stderr
// line ("\r"-prefixed, space-padded to erase the previous render).
// Register Update with Engine.OnUpdate; call Done once the run ends to
// terminate the line with a newline. Safe for concurrent Update calls.
type StatusLine struct {
	mu    sync.Mutex
	w     io.Writer
	tool  string
	width int
	wrote bool
}

// NewStatusLine returns a renderer writing to w, prefixing every line
// with the tool name.
func NewStatusLine(w io.Writer, tool string) *StatusLine {
	return &StatusLine{w: w, tool: tool}
}

// Update renders one snapshot.
func (l *StatusLine) Update(s Snapshot) {
	line := fmt.Sprintf("%s: %s %d/%d cells · elapsed %.1fs · eta %s",
		l.tool, s.Study, s.CellsDone, s.CellsTotal, s.ElapsedS, formatETA(s.ETAS))
	if s.CellsFailed > 0 {
		line += fmt.Sprintf(" · %d FAILED", s.CellsFailed)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pad := l.width - len(line)
	l.width = len(line)
	for pad > 0 {
		line += " "
		pad--
	}
	fmt.Fprint(l.w, "\r"+line)
	l.wrote = true
}

// Done terminates the status line with a newline (only if anything was
// rendered).
func (l *StatusLine) Done() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wrote {
		fmt.Fprintln(l.w)
	}
}

// formatETA renders an ETA estimate ("?" before the first completion).
func formatETA(eta float64) string {
	if eta < 0 {
		return "?"
	}
	return fmt.Sprintf("%.1fs", eta)
}
