package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugEngine is the engine expvar reads from. expvar.Publish is
// global and panics on re-registration, so the published variable
// indirects through this pointer instead of capturing an engine.
var (
	debugEngine atomic.Pointer[Engine]
	expvarOnce  sync.Once
)

// publishExpvar registers the "fred.progress" expvar exactly once per
// process; subsequent engines just swap the pointer it reads.
func publishExpvar(e *Engine) {
	debugEngine.Store(e)
	expvarOnce.Do(func() {
		expvar.Publish("fred.progress", expvar.Func(func() any {
			if cur := debugEngine.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
}

// Handler returns the debug endpoint's mux:
//
//	/progress            one JSON Snapshot
//	/progress/stream     SSE: one "data: <snapshot JSON>" event now and
//	                     per cell completion
//	/debug/vars          expvar (includes fred.progress)
//	/debug/pprof/...     runtime profiles
func Handler(e *Engine) http.Handler {
	publishExpvar(e)
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(e.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/progress/stream", func(w http.ResponseWriter, r *http.Request) {
		streamProgress(e, w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// streamProgress serves one SSE subscriber: the current snapshot
// immediately, then one event per cell completion until the client
// disconnects. Events the client is too slow for are dropped (the
// channel is a small buffer, not a backlog) — progress is a state, not
// a log, so the next event supersedes anything missed.
func streamProgress(e *Engine, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	updates := make(chan Snapshot, 4)
	var closed atomic.Bool
	e.OnUpdate(func(s Snapshot) {
		if closed.Load() {
			return
		}
		select {
		case updates <- s:
		default:
		}
	})
	defer closed.Store(true)

	send := func(s Snapshot) bool {
		data, err := json.Marshal(s)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send(e.Snapshot()) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case s := <-updates:
			if !send(s) {
				return
			}
		}
	}
}

// StartServer binds addr, reports the resolved listening address on
// errw (useful with ":0"), and serves the debug handler in the
// background for the life of the process. The listen itself is
// synchronous so a bad address fails fast at startup.
func StartServer(addr string, e *Engine, errw interface{ Write([]byte) (int, error) }) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	resolved := ln.Addr().String()
	if errw != nil {
		fmt.Fprintf(errw, "debug endpoint listening on http://%s/progress\n", resolved)
	}
	srv := &http.Server{Handler: Handler(e)}
	go srv.Serve(ln)
	return resolved, nil
}
