// Package multiwafer implements the inter-wafer scaling discussion of
// Section 8.3 of the FRED paper ("going beyond a single wafer"): when
// a model needs more than one wafer, the on-wafer FRED fabric works in
// tandem with an inter-wafer interconnect to form hierarchical
// collectives. A global all-reduce decomposes into
//
//  1. a special intra-wafer reduce-scatter performed by FRED, where
//     only the boundary NPUs (those with I/O access) hold the partial
//     results,
//  2. an all-reduce across wafers carried by the boundary NPUs over
//     the inter-wafer links, and
//  3. a final intra-wafer all-gather, with the boundary NPUs
//     broadcasting the result to every NPU of their wafer.
//
// The package also models the naive alternative the paper contrasts —
// a single per-wafer leader exchanging the full gradient across wafers
// (the reduction-tree style of monolithic systems) — to quantify the
// bandwidth amplification of boundary-parallel exchange.
//
// Beyond the paper's fixed 2–8-wafer ring, Config.Dims arranges the
// wafers in a multi-dimensional scale-out grid (the hierarchical
// network-model style ASTRA-sim 2.0 uses to reach 1k–100k NPUs): each
// dimension carries its own set of per-boundary-port rings, the global
// all-reduce becomes reduce-scatter down the dims / ring-all-reduce on
// the last / all-gather back up, and payloads shrink by the dimension
// size at each level. A single dimension reproduces the original
// Section 8.3 ring model exactly. Per-wafer fabrics and each
// dimension's rings touch disjoint link sets, so the sharded netsim
// rate engine (see netsim.SetFillParallel) partitions such a system
// into many independent contention domains by construction.
package multiwafer

import (
	"fmt"

	"github.com/wafernet/fred/internal/collective"
	"github.com/wafernet/fred/internal/netsim"
	"github.com/wafernet/fred/internal/sim"
	"github.com/wafernet/fred/internal/topology"
)

// Config sizes a multi-wafer system.
type Config struct {
	// Wafers is the wafer count (≥ 2).
	Wafers int
	// Variant selects the per-wafer FRED configuration.
	Variant topology.FredVariant
	// BoundaryPorts is the number of inter-wafer ports per wafer, each
	// attached to a distinct boundary NPU (the paper's boundary NPUs
	// are those with I/O access; the baseline wafer has 18 channels).
	BoundaryPorts int
	// PortBW is the per-port one-direction inter-wafer bandwidth,
	// split evenly across the scale-out dimensions.
	PortBW float64
	// PortLatency is the inter-wafer hop latency (off-wafer SerDes —
	// orders of magnitude above on-wafer hops).
	PortLatency float64
	// Dims arranges the wafers in a hierarchical scale-out grid: each
	// entry is one dimension's size (≥ 2) and the product must equal
	// Wafers. Every boundary port gets a ring per dimension. Empty
	// means a single dimension of all wafers — the original flat ring.
	Dims []int
	// FillWorkers sets the netsim fill worker-pool width (≤ 1 means
	// sequential). Results are byte-identical at every width; large
	// hierarchical systems fill their many independent contention
	// domains concurrently.
	FillWorkers int
}

// ConfigError reports which Config field failed validation and why.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("multiwafer: invalid %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration, returning a *ConfigError naming
// the offending field instead of failing deep inside topology
// construction.
func (c Config) Validate() error {
	if c.Wafers < 2 {
		return &ConfigError{Field: "Wafers", Reason: fmt.Sprintf("need ≥ 2 wafers, got %d", c.Wafers)}
	}
	if c.BoundaryPorts < 1 {
		return &ConfigError{Field: "BoundaryPorts", Reason: fmt.Sprintf("need ≥ 1 boundary port, got %d", c.BoundaryPorts)}
	}
	if c.PortBW <= 0 {
		return &ConfigError{Field: "PortBW", Reason: fmt.Sprintf("bandwidth %g must be positive", c.PortBW)}
	}
	if c.PortLatency < 0 {
		return &ConfigError{Field: "PortLatency", Reason: fmt.Sprintf("latency %g must be non-negative", c.PortLatency)}
	}
	if len(c.Dims) > 0 {
		product := 1
		for i, d := range c.Dims {
			if d < 2 {
				return &ConfigError{Field: "Dims", Reason: fmt.Sprintf("dimension %d size %d must be ≥ 2", i, d)}
			}
			product *= d
		}
		if product != c.Wafers {
			return &ConfigError{Field: "Dims", Reason: fmt.Sprintf("dimension product %d != %d wafers", product, c.Wafers)}
		}
	}
	return nil
}

// DefaultConfig returns a 4-wafer Fred-D system with 18 × 128 GB/s
// inter-wafer ports (CXL-class, matching the I/O controllers).
func DefaultConfig() Config {
	return Config{
		Wafers:        4,
		Variant:       topology.FredD,
		BoundaryPorts: 18,
		PortBW:        128e9,
		PortLatency:   200e-9,
	}
}

// System is a set of FRED wafers joined, along every scale-out
// dimension, by a ring of inter-wafer links per boundary port (along
// dimension d, port k of wafer w connects to port k of w's +1
// neighbour in that dimension, both directions).
type System struct {
	cfg    Config
	dims   []int
	stride []int // mixed-radix stride per dimension
	sched  *sim.Scheduler
	net    *netsim.Network
	wafers []*topology.FredFabric
	// fwd[d][w][k]: dimension d, wafer w, port k → w's next neighbour
	// along d; rev is the opposite direction.
	fwd, rev [][][]netsim.LinkID
}

// New builds a multi-wafer system on a fresh scheduler, panicking on
// an invalid configuration (NewErr returns the error instead).
func New(cfg Config) *System {
	s, err := NewErr(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewErr builds a multi-wafer system on a fresh scheduler, returning a
// *ConfigError when the configuration is invalid.
func NewErr(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dims := cfg.Dims
	if len(dims) == 0 {
		dims = []int{cfg.Wafers} // the original flat ring
	}
	s := &System{cfg: cfg, dims: dims, sched: sim.NewScheduler()}
	s.stride = make([]int, len(dims))
	acc := 1
	for d, size := range dims {
		s.stride[d] = acc
		acc *= size
	}
	s.net = netsim.New(s.sched)
	if cfg.FillWorkers > 1 {
		s.net.SetFillParallel(cfg.FillWorkers)
	}
	for w := 0; w < cfg.Wafers; w++ {
		s.wafers = append(s.wafers, topology.NewFredVariant(s.net, cfg.Variant))
	}
	if cfg.BoundaryPorts > s.wafers[0].NPUCount() {
		return nil, &ConfigError{Field: "BoundaryPorts", Reason: fmt.Sprintf(
			"%d ports exceed the wafer's %d NPUs", cfg.BoundaryPorts, s.wafers[0].NPUCount())}
	}
	// Each physical port's bandwidth splits across the dimensions it
	// serves; with one dimension this is the original model verbatim
	// (same links, names and bandwidths in the same creation order).
	bw := cfg.PortBW / float64(len(dims))
	s.fwd = make([][][]netsim.LinkID, len(dims))
	s.rev = make([][][]netsim.LinkID, len(dims))
	for d := range dims {
		s.fwd[d] = make([][]netsim.LinkID, cfg.Wafers)
		s.rev[d] = make([][]netsim.LinkID, cfg.Wafers)
		for w := 0; w < cfg.Wafers; w++ {
			next := s.neighbour(w, d)
			for k := 0; k < cfg.BoundaryPorts; k++ {
				// The inter-wafer link joins the boundary NPUs' switch
				// ports; we model it NPU-to-NPU through dedicated links.
				a := s.npuNode(w, k)
				b := s.npuNode(next, k)
				fwdName := fmt.Sprintf("xw%d.%d->", w, k)
				revName := fmt.Sprintf("xw%d.%d<-", w, k)
				if len(dims) > 1 {
					fwdName = fmt.Sprintf("xw%d.d%d.%d->", w, d, k)
					revName = fmt.Sprintf("xw%d.d%d.%d<-", w, d, k)
				}
				s.fwd[d][w] = append(s.fwd[d][w], s.net.AddLink(a, b, bw, cfg.PortLatency, fwdName))
				s.rev[d][w] = append(s.rev[d][w], s.net.AddLink(b, a, bw, cfg.PortLatency, revName))
			}
		}
	}
	return s, nil
}

// neighbour returns the wafer one step (+1, wrapping) along dimension
// d from wafer w in the mixed-radix grid.
func (s *System) neighbour(w, d int) int {
	size, stride := s.dims[d], s.stride[d]
	coord := (w / stride) % size
	if coord == size-1 {
		return w - (size-1)*stride // wrap to the ring's start
	}
	return w + stride
}

// npuNode returns the netsim node of boundary NPU k on wafer w.
// Boundary NPUs are spread across leaf switches (one per leaf first,
// then wrapping), mirroring the round-robin I/O controller attachment.
func (s *System) npuNode(w, k int) netsim.NodeID {
	f := s.wafers[w]
	npu := s.BoundaryNPU(k)
	// Route through the NPU's own node: inter-wafer traffic enters and
	// leaves via the NPU (which owns the I/O port).
	return nodeOf(f, npu)
}

// BoundaryNPU maps a boundary port index to its NPU index.
func (s *System) BoundaryNPU(k int) int {
	f := s.wafers[0]
	l1s := f.L1Count()
	perL1 := f.NPUCount() / l1s
	// Spread: port k sits under leaf k%l1s at local position k/l1s.
	return (k%l1s)*perL1 + (k/l1s)%perL1
}

// nodeOf recovers the netsim node of an NPU via its up-link source.
func nodeOf(f *topology.FredFabric, npu int) netsim.NodeID {
	return f.Network().Link(f.UpLink(npu)).Src
}

// Wafers returns the wafer count.
func (s *System) Wafers() int { return s.cfg.Wafers }

// Dims returns the scale-out dimension sizes (a single dimension of
// all wafers when Config.Dims was empty).
func (s *System) Dims() []int { return s.dims }

// NPUCount returns the total NPU count across all wafers.
func (s *System) NPUCount() int { return s.cfg.Wafers * s.wafers[0].NPUCount() }

// Close releases the network's fill worker pool, if FillWorkers
// enabled one.
func (s *System) Close() { s.net.Close() }

// Network returns the shared flow network.
func (s *System) Network() *netsim.Network { return s.net }

// Wafer returns one wafer's fabric.
func (s *System) Wafer(w int) *topology.FredFabric { return s.wafers[w] }

// allNPUs lists the NPU indices of one wafer.
func (s *System) allNPUs() []int {
	n := s.wafers[0].NPUCount()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ringOp distinguishes the per-dimension ring collectives of the
// hierarchical exchange by the bytes each directed ring edge carries
// for a payload of s over a ring of D wafers (bidirectional rings, so
// the volume splits across the two directions):
//
//	reduce-scatter / all-gather: (D−1)·s/(2D)
//	all-reduce:                2·(D−1)·s/(2D)
type ringOp int

const (
	ringRS ringOp = iota
	ringAR
	ringAG
)

// ringPhase builds one pipelined phase of ring transfers along
// dimension d on the first `ports` boundary ports, with every wafer's
// forward and reverse edges active at once.
func (s *System) ringPhase(d int, bytes float64, op ringOp, ports int) collective.Phase {
	size := s.dims[d]
	perEdge := float64(size-1) * bytes / float64(2*size)
	if op == ringAR {
		perEdge *= 2
	}
	var ph collective.Phase
	for k := 0; k < ports; k++ {
		for w := 0; w < s.cfg.Wafers; w++ {
			ph = append(ph, collective.Transfer{Links: []netsim.LinkID{s.fwd[d][w][k]}, Bytes: perEdge})
			ph = append(ph, collective.Transfer{Links: []netsim.LinkID{s.rev[d][w][k]}, Bytes: perEdge})
		}
	}
	return ph
}

// interPhases compiles the inter-wafer all-reduce of a per-port
// payload across the scale-out hierarchy: ring reduce-scatter down
// dimensions 0..D−2 (each shrinking the payload by its dimension
// size), a ring all-reduce along the last dimension, and ring
// all-gathers back up in reverse. A single dimension degenerates to
// exactly the original flat bidirectional ring all-reduce phase.
func (s *System) interPhases(bytes float64, ports int) []collective.Phase {
	D := len(s.dims)
	phases := make([]collective.Phase, 0, 2*D-1)
	size := bytes
	for d := 0; d < D-1; d++ {
		phases = append(phases, s.ringPhase(d, size, ringRS, ports))
		size /= float64(s.dims[d])
	}
	phases = append(phases, s.ringPhase(D-1, size, ringAR, ports))
	for d := D - 2; d >= 0; d-- {
		size *= float64(s.dims[d])
		phases = append(phases, s.ringPhase(d, size, ringAG, ports))
	}
	return phases
}

// GlobalAllReduce compiles the hierarchical three-step global
// all-reduce of Section 8.3 and returns its phases as one schedule:
// concurrent in-network reduce-scatters to the boundary NPUs, the
// boundary rings across wafers, and the in-network all-gathers back.
func (s *System) GlobalAllReduce(bytes float64) collective.Schedule {
	out := collective.Schedule{Name: "global-allreduce"}
	K := s.cfg.BoundaryPorts
	shard := bytes / float64(K)
	npus := s.allNPUs()

	// Step 1: per wafer, K concurrent in-network reduces, one shard to
	// each boundary NPU (the "special intra-wafer reduce-scatter").
	var step1 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		for k := 0; k < K; k++ {
			sub := collective.FredInNetworkReduce(f, npus, s.BoundaryNPU(k), shard)
			for _, ph := range sub.Phases {
				step1 = append(step1, ph...)
			}
		}
	}
	// Step 2: K concurrent boundary rings across wafers — with a
	// multi-dimensional grid, one phase per hierarchy level
	// (reduce-scatter down, ring all-reduce on the last dimension,
	// all-gather back up); with one dimension, the original single ring
	// all-reduce phase.
	inter := s.interPhases(shard, K)
	// Step 3: per wafer, K concurrent in-network multicasts from the
	// boundary NPUs (the "special all-gather").
	var step3 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		for k := 0; k < K; k++ {
			sub := collective.FredInNetworkMulticast(f, s.BoundaryNPU(k), npus, shard)
			for _, ph := range sub.Phases {
				step3 = append(step3, ph...)
			}
		}
	}
	out.Phases = make([]collective.Phase, 0, 2+len(inter))
	out.Phases = append(out.Phases, step1)
	out.Phases = append(out.Phases, inter...)
	out.Phases = append(out.Phases, step3)
	return out
}

// NaiveAllReduce compiles the contrasted design: each wafer reduces to
// a single leader, the leaders ring-all-reduce the FULL payload over
// one boundary port, and each leader broadcasts back — the
// reduction-tree style with no boundary parallelism.
func (s *System) NaiveAllReduce(bytes float64) collective.Schedule {
	out := collective.Schedule{Name: "naive-allreduce"}
	npus := s.allNPUs()
	var step1, step3 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		sub := collective.FredInNetworkReduce(f, npus, s.BoundaryNPU(0), bytes)
		for _, ph := range sub.Phases {
			step1 = append(step1, ph...)
		}
		bc := collective.FredInNetworkMulticast(f, s.BoundaryNPU(0), npus, bytes)
		for _, ph := range bc.Phases {
			step3 = append(step3, ph...)
		}
	}
	// The leaders carry the FULL payload through every dimension in
	// turn — no hierarchical payload shrinking, no port parallelism.
	out.Phases = append(out.Phases, step1)
	for d := range s.dims {
		out.Phases = append(out.Phases, s.ringPhase(d, bytes, ringAR, 1))
	}
	out.Phases = append(out.Phases, step3)
	return out
}

// Run executes a schedule on the system's otherwise-idle network and
// returns the elapsed time.
func (s *System) Run(sched collective.Schedule) float64 {
	return collective.RunToCompletion(s.net, sched)
}
