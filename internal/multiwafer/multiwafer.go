// Package multiwafer implements the inter-wafer scaling discussion of
// Section 8.3 of the FRED paper ("going beyond a single wafer"): when
// a model needs more than one wafer, the on-wafer FRED fabric works in
// tandem with an inter-wafer interconnect to form hierarchical
// collectives. A global all-reduce decomposes into
//
//  1. a special intra-wafer reduce-scatter performed by FRED, where
//     only the boundary NPUs (those with I/O access) hold the partial
//     results,
//  2. an all-reduce across wafers carried by the boundary NPUs over
//     the inter-wafer links, and
//  3. a final intra-wafer all-gather, with the boundary NPUs
//     broadcasting the result to every NPU of their wafer.
//
// The package also models the naive alternative the paper contrasts —
// a single per-wafer leader exchanging the full gradient across wafers
// (the reduction-tree style of monolithic systems) — to quantify the
// bandwidth amplification of boundary-parallel exchange.
package multiwafer

import (
	"fmt"

	"github.com/wafernet/fred/internal/collective"
	"github.com/wafernet/fred/internal/netsim"
	"github.com/wafernet/fred/internal/sim"
	"github.com/wafernet/fred/internal/topology"
)

// Config sizes a multi-wafer system.
type Config struct {
	// Wafers is the wafer count (≥ 2).
	Wafers int
	// Variant selects the per-wafer FRED configuration.
	Variant topology.FredVariant
	// BoundaryPorts is the number of inter-wafer ports per wafer, each
	// attached to a distinct boundary NPU (the paper's boundary NPUs
	// are those with I/O access; the baseline wafer has 18 channels).
	BoundaryPorts int
	// PortBW is the per-port one-direction inter-wafer bandwidth.
	PortBW float64
	// PortLatency is the inter-wafer hop latency (off-wafer SerDes —
	// orders of magnitude above on-wafer hops).
	PortLatency float64
}

// DefaultConfig returns a 4-wafer Fred-D system with 18 × 128 GB/s
// inter-wafer ports (CXL-class, matching the I/O controllers).
func DefaultConfig() Config {
	return Config{
		Wafers:        4,
		Variant:       topology.FredD,
		BoundaryPorts: 18,
		PortBW:        128e9,
		PortLatency:   200e-9,
	}
}

// System is a set of FRED wafers joined by a ring of inter-wafer links
// per boundary port (port k of wafer w connects to port k of wafer
// w+1 mod W, both directions).
type System struct {
	cfg    Config
	sched  *sim.Scheduler
	net    *netsim.Network
	wafers []*topology.FredFabric
	// fwd[w][k]: wafer w, port k → wafer w+1; rev is the opposite
	// direction.
	fwd, rev [][]netsim.LinkID
}

// New builds a multi-wafer system on a fresh scheduler.
func New(cfg Config) *System {
	if cfg.Wafers < 2 {
		panic(fmt.Sprintf("multiwafer: need ≥ 2 wafers, got %d", cfg.Wafers))
	}
	if cfg.BoundaryPorts < 1 {
		panic("multiwafer: need ≥ 1 boundary port")
	}
	s := &System{cfg: cfg, sched: sim.NewScheduler()}
	s.net = netsim.New(s.sched)
	for w := 0; w < cfg.Wafers; w++ {
		s.wafers = append(s.wafers, topology.NewFredVariant(s.net, cfg.Variant))
	}
	if cfg.BoundaryPorts > s.wafers[0].NPUCount() {
		panic("multiwafer: more boundary ports than NPUs")
	}
	s.fwd = make([][]netsim.LinkID, cfg.Wafers)
	s.rev = make([][]netsim.LinkID, cfg.Wafers)
	for w := 0; w < cfg.Wafers; w++ {
		next := (w + 1) % cfg.Wafers
		for k := 0; k < cfg.BoundaryPorts; k++ {
			// The inter-wafer link joins the boundary NPUs' switch
			// ports; we model it NPU-to-NPU through dedicated links.
			a := s.npuNode(w, k)
			b := s.npuNode(next, k)
			s.fwd[w] = append(s.fwd[w], s.net.AddLink(a, b, cfg.PortBW, cfg.PortLatency,
				fmt.Sprintf("xw%d.%d->", w, k)))
			s.rev[w] = append(s.rev[w], s.net.AddLink(b, a, cfg.PortBW, cfg.PortLatency,
				fmt.Sprintf("xw%d.%d<-", w, k)))
		}
	}
	return s
}

// npuNode returns the netsim node of boundary NPU k on wafer w.
// Boundary NPUs are spread across leaf switches (one per leaf first,
// then wrapping), mirroring the round-robin I/O controller attachment.
func (s *System) npuNode(w, k int) netsim.NodeID {
	f := s.wafers[w]
	npu := s.BoundaryNPU(k)
	// Route through the NPU's own node: inter-wafer traffic enters and
	// leaves via the NPU (which owns the I/O port).
	return nodeOf(f, npu)
}

// BoundaryNPU maps a boundary port index to its NPU index.
func (s *System) BoundaryNPU(k int) int {
	f := s.wafers[0]
	l1s := f.L1Count()
	perL1 := f.NPUCount() / l1s
	// Spread: port k sits under leaf k%l1s at local position k/l1s.
	return (k%l1s)*perL1 + (k/l1s)%perL1
}

// nodeOf recovers the netsim node of an NPU via its up-link source.
func nodeOf(f *topology.FredFabric, npu int) netsim.NodeID {
	return f.Network().Link(f.UpLink(npu)).Src
}

// Wafers returns the wafer count.
func (s *System) Wafers() int { return s.cfg.Wafers }

// Network returns the shared flow network.
func (s *System) Network() *netsim.Network { return s.net }

// Wafer returns one wafer's fabric.
func (s *System) Wafer(w int) *topology.FredFabric { return s.wafers[w] }

// allNPUs lists the NPU indices of one wafer.
func (s *System) allNPUs() []int {
	n := s.wafers[0].NPUCount()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// interRing returns the pipelined bidirectional ring schedule of an
// all-reduce across wafers on boundary port k.
func (s *System) interRing(k int, bytes float64) collective.Schedule {
	sched := collective.Schedule{Name: fmt.Sprintf("inter-wafer-ring[%d]", k)}
	W := s.cfg.Wafers
	if W <= 1 || bytes <= 0 {
		return sched
	}
	perEdge := 2 * float64(W-1) * bytes / float64(2*W)
	var ph collective.Phase
	for w := 0; w < W; w++ {
		ph = append(ph, collective.Transfer{Links: []netsim.LinkID{s.fwd[w][k]}, Bytes: perEdge})
		ph = append(ph, collective.Transfer{Links: []netsim.LinkID{s.rev[w][k]}, Bytes: perEdge})
	}
	sched.Phases = []collective.Phase{ph}
	return sched
}

// GlobalAllReduce compiles the hierarchical three-step global
// all-reduce of Section 8.3 and returns its phases as one schedule:
// concurrent in-network reduce-scatters to the boundary NPUs, the
// boundary rings across wafers, and the in-network all-gathers back.
func (s *System) GlobalAllReduce(bytes float64) collective.Schedule {
	out := collective.Schedule{Name: "global-allreduce"}
	K := s.cfg.BoundaryPorts
	shard := bytes / float64(K)
	npus := s.allNPUs()

	// Step 1: per wafer, K concurrent in-network reduces, one shard to
	// each boundary NPU (the "special intra-wafer reduce-scatter").
	var step1 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		for k := 0; k < K; k++ {
			sub := collective.FredInNetworkReduce(f, npus, s.BoundaryNPU(k), shard)
			for _, ph := range sub.Phases {
				step1 = append(step1, ph...)
			}
		}
	}
	// Step 2: K concurrent boundary rings across wafers.
	var step2 collective.Phase
	for k := 0; k < K; k++ {
		sub := s.interRing(k, shard)
		for _, ph := range sub.Phases {
			step2 = append(step2, ph...)
		}
	}
	// Step 3: per wafer, K concurrent in-network multicasts from the
	// boundary NPUs (the "special all-gather").
	var step3 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		for k := 0; k < K; k++ {
			sub := collective.FredInNetworkMulticast(f, s.BoundaryNPU(k), npus, shard)
			for _, ph := range sub.Phases {
				step3 = append(step3, ph...)
			}
		}
	}
	out.Phases = []collective.Phase{step1, step2, step3}
	return out
}

// NaiveAllReduce compiles the contrasted design: each wafer reduces to
// a single leader, the leaders ring-all-reduce the FULL payload over
// one boundary port, and each leader broadcasts back — the
// reduction-tree style with no boundary parallelism.
func (s *System) NaiveAllReduce(bytes float64) collective.Schedule {
	out := collective.Schedule{Name: "naive-allreduce"}
	npus := s.allNPUs()
	var step1, step3 collective.Phase
	for w := range s.wafers {
		f := s.wafers[w]
		sub := collective.FredInNetworkReduce(f, npus, s.BoundaryNPU(0), bytes)
		for _, ph := range sub.Phases {
			step1 = append(step1, ph...)
		}
		bc := collective.FredInNetworkMulticast(f, s.BoundaryNPU(0), npus, bytes)
		for _, ph := range bc.Phases {
			step3 = append(step3, ph...)
		}
	}
	var step2 collective.Phase
	for _, ph := range s.interRing(0, bytes).Phases {
		step2 = append(step2, ph...)
	}
	out.Phases = []collective.Phase{step1, step2, step3}
	return out
}

// Run executes a schedule on the system's otherwise-idle network and
// returns the elapsed time.
func (s *System) Run(sched collective.Schedule) float64 {
	return collective.RunToCompletion(s.net, sched)
}
