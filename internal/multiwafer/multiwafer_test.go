package multiwafer

import (
	"math"
	"testing"

	"github.com/wafernet/fred/internal/topology"
)

func TestSystemShape(t *testing.T) {
	s := New(DefaultConfig())
	if s.Wafers() != 4 {
		t.Fatalf("wafers = %d", s.Wafers())
	}
	for k := 0; k < 18; k++ {
		npu := s.BoundaryNPU(k)
		if npu < 0 || npu >= 20 {
			t.Fatalf("boundary port %d maps to NPU %d", k, npu)
		}
	}
	// Boundary NPUs must be spread: the first five ports hit five
	// distinct leaves.
	seen := map[int]bool{}
	for k := 0; k < 5; k++ {
		seen[s.Wafer(0).L1Of(s.BoundaryNPU(k))] = true
	}
	if len(seen) != 5 {
		t.Fatalf("first 5 boundary ports use %d leaves, want 5", len(seen))
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Wafers: 1, Variant: topology.FredD, BoundaryPorts: 4, PortBW: 1e9},
		{Wafers: 2, Variant: topology.FredD, BoundaryPorts: 0, PortBW: 1e9},
		{Wafers: 2, Variant: topology.FredD, BoundaryPorts: 99, PortBW: 1e9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGlobalAllReduceCompletes(t *testing.T) {
	s := New(DefaultConfig())
	d := s.Run(s.GlobalAllReduce(1e9))
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("global all-reduce time = %g", d)
	}
}

func TestHierarchicalBeatsNaive(t *testing.T) {
	// The boundary-parallel exchange uses all 18 inter-wafer ports;
	// the naive leader exchange uses one. For inter-wafer-bound sizes
	// the hierarchical collective must win by roughly the port count.
	const bytes = 10e9
	// Build separate systems so each network starts idle.
	sHier := New(DefaultConfig())
	hier := sHier.Run(sHier.GlobalAllReduce(bytes))
	sNaive := New(DefaultConfig())
	naive := sNaive.Run(sNaive.NaiveAllReduce(bytes))
	if hier >= naive {
		t.Fatalf("hierarchical (%g) not faster than naive (%g)", hier, naive)
	}
	// The inter-wafer step itself speeds up by the 18× port
	// parallelism; end to end the intra-wafer reduce/gather steps
	// (which both designs share) cap the overall gain near 6-7× at
	// these bandwidth ratios.
	gain := naive / hier
	if gain < 4 || gain > 18 {
		t.Fatalf("gain = %.1fx, expected 4-18x", gain)
	}
}

func TestInterWaferStepDominatesAtCXLRates(t *testing.T) {
	// On-wafer reduce/gather run at TB/s; the 128 GB/s inter-wafer
	// rings dominate. Check the global time is close to the analytic
	// inter-wafer ring bound: 2(W−1)/W · (D/K) / portBW.
	cfg := DefaultConfig()
	s := New(cfg)
	const bytes = 18e9
	got := s.Run(s.GlobalAllReduce(bytes))
	shard := bytes / float64(cfg.BoundaryPorts)
	// Bidirectional ring: each directed edge carries (W−1)/W · shard.
	bound := float64(cfg.Wafers-1) / float64(cfg.Wafers) * shard / cfg.PortBW
	if got < bound {
		t.Fatalf("time %g below the inter-wafer bound %g", got, bound)
	}
	if got > bound*3.5 {
		t.Fatalf("time %g far above the inter-wafer bound %g — hierarchy overhead too high", got, bound)
	}
}

func TestScalesWithWaferCount(t *testing.T) {
	// Ring all-reduce time grows with (W−1)/W — nearly flat in W; the
	// 8-wafer system must not cost 2× the 4-wafer one.
	cfg := DefaultConfig()
	s4 := New(cfg)
	t4 := s4.Run(s4.GlobalAllReduce(4e9))
	cfg.Wafers = 8
	s8 := New(cfg)
	t8 := s8.Run(s8.GlobalAllReduce(4e9))
	if t8 > t4*1.4 {
		t.Fatalf("8 wafers (%g) vs 4 wafers (%g): ring scaling broken", t8, t4)
	}
	if t8 <= t4 {
		t.Fatalf("8 wafers (%g) should be slightly slower than 4 (%g)", t8, t4)
	}
}

func TestFasterInterconnectHelps(t *testing.T) {
	cfg := DefaultConfig()
	slow := New(cfg)
	tSlow := slow.Run(slow.GlobalAllReduce(4e9))
	cfg.PortBW *= 4
	fast := New(cfg)
	tFast := fast.Run(fast.GlobalAllReduce(4e9))
	if tFast >= tSlow {
		t.Fatalf("4x inter-wafer BW did not help: %g vs %g", tFast, tSlow)
	}
}
