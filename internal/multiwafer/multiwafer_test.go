package multiwafer

import (
	"errors"
	"math"
	"testing"

	"github.com/wafernet/fred/internal/topology"
)

func TestSystemShape(t *testing.T) {
	s := New(DefaultConfig())
	if s.Wafers() != 4 {
		t.Fatalf("wafers = %d", s.Wafers())
	}
	for k := 0; k < 18; k++ {
		npu := s.BoundaryNPU(k)
		if npu < 0 || npu >= 20 {
			t.Fatalf("boundary port %d maps to NPU %d", k, npu)
		}
	}
	// Boundary NPUs must be spread: the first five ports hit five
	// distinct leaves.
	seen := map[int]bool{}
	for k := 0; k < 5; k++ {
		seen[s.Wafer(0).L1Of(s.BoundaryNPU(k))] = true
	}
	if len(seen) != 5 {
		t.Fatalf("first 5 boundary ports use %d leaves, want 5", len(seen))
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{
		{Wafers: 1, Variant: topology.FredD, BoundaryPorts: 4, PortBW: 1e9},
		{Wafers: 2, Variant: topology.FredD, BoundaryPorts: 0, PortBW: 1e9},
		{Wafers: 2, Variant: topology.FredD, BoundaryPorts: 99, PortBW: 1e9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGlobalAllReduceCompletes(t *testing.T) {
	s := New(DefaultConfig())
	d := s.Run(s.GlobalAllReduce(1e9))
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("global all-reduce time = %g", d)
	}
}

func TestHierarchicalBeatsNaive(t *testing.T) {
	// The boundary-parallel exchange uses all 18 inter-wafer ports;
	// the naive leader exchange uses one. For inter-wafer-bound sizes
	// the hierarchical collective must win by roughly the port count.
	const bytes = 10e9
	// Build separate systems so each network starts idle.
	sHier := New(DefaultConfig())
	hier := sHier.Run(sHier.GlobalAllReduce(bytes))
	sNaive := New(DefaultConfig())
	naive := sNaive.Run(sNaive.NaiveAllReduce(bytes))
	if hier >= naive {
		t.Fatalf("hierarchical (%g) not faster than naive (%g)", hier, naive)
	}
	// The inter-wafer step itself speeds up by the 18× port
	// parallelism; end to end the intra-wafer reduce/gather steps
	// (which both designs share) cap the overall gain near 6-7× at
	// these bandwidth ratios.
	gain := naive / hier
	if gain < 4 || gain > 18 {
		t.Fatalf("gain = %.1fx, expected 4-18x", gain)
	}
}

func TestInterWaferStepDominatesAtCXLRates(t *testing.T) {
	// On-wafer reduce/gather run at TB/s; the 128 GB/s inter-wafer
	// rings dominate. Check the global time is close to the analytic
	// inter-wafer ring bound: 2(W−1)/W · (D/K) / portBW.
	cfg := DefaultConfig()
	s := New(cfg)
	const bytes = 18e9
	got := s.Run(s.GlobalAllReduce(bytes))
	shard := bytes / float64(cfg.BoundaryPorts)
	// Bidirectional ring: each directed edge carries (W−1)/W · shard.
	bound := float64(cfg.Wafers-1) / float64(cfg.Wafers) * shard / cfg.PortBW
	if got < bound {
		t.Fatalf("time %g below the inter-wafer bound %g", got, bound)
	}
	if got > bound*3.5 {
		t.Fatalf("time %g far above the inter-wafer bound %g — hierarchy overhead too high", got, bound)
	}
}

func TestScalesWithWaferCount(t *testing.T) {
	// Ring all-reduce time grows with (W−1)/W — nearly flat in W; the
	// 8-wafer system must not cost 2× the 4-wafer one.
	cfg := DefaultConfig()
	s4 := New(cfg)
	t4 := s4.Run(s4.GlobalAllReduce(4e9))
	cfg.Wafers = 8
	s8 := New(cfg)
	t8 := s8.Run(s8.GlobalAllReduce(4e9))
	if t8 > t4*1.4 {
		t.Fatalf("8 wafers (%g) vs 4 wafers (%g): ring scaling broken", t8, t4)
	}
	if t8 <= t4 {
		t.Fatalf("8 wafers (%g) should be slightly slower than 4 (%g)", t8, t4)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{Wafers: 1, BoundaryPorts: 4, PortBW: 1e9}, "Wafers"},
		{Config{Wafers: 2, BoundaryPorts: 0, PortBW: 1e9}, "BoundaryPorts"},
		{Config{Wafers: 2, BoundaryPorts: 4, PortBW: 0}, "PortBW"},
		{Config{Wafers: 2, BoundaryPorts: 4, PortBW: 1e9, PortLatency: -1}, "PortLatency"},
		{Config{Wafers: 4, BoundaryPorts: 4, PortBW: 1e9, Dims: []int{4, 1}}, "Dims"},
		{Config{Wafers: 4, BoundaryPorts: 4, PortBW: 1e9, Dims: []int{2, 4}}, "Dims"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("config %+v: got %v, want *ConfigError", tc.cfg, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("config %+v: error names field %q, want %q", tc.cfg, ce.Field, tc.field)
		}
		if _, err := NewErr(tc.cfg); err == nil {
			t.Errorf("NewErr accepted invalid config %+v", tc.cfg)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestHierarchicalGridShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Wafers = 8
	cfg.Dims = []int{4, 2}
	cfg.BoundaryPorts = 4
	s := New(cfg)
	if got := s.Dims(); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("dims = %v", got)
	}
	if s.NPUCount() != 8*s.Wafer(0).NPUCount() {
		t.Fatalf("NPUCount = %d", s.NPUCount())
	}
	// Dimension 0 rings step by 1 within a group of 4; dimension 1
	// rings step by 4. Check the wrap on both.
	if n := s.neighbour(3, 0); n != 0 {
		t.Fatalf("neighbour(3, dim0) = %d, want 0", n)
	}
	if n := s.neighbour(5, 0); n != 6 {
		t.Fatalf("neighbour(5, dim0) = %d, want 6", n)
	}
	if n := s.neighbour(2, 1); n != 6 {
		t.Fatalf("neighbour(2, dim1) = %d, want 6", n)
	}
	if n := s.neighbour(6, 1); n != 2 {
		t.Fatalf("neighbour(6, dim1) = %d, want 2", n)
	}
	// Every dimension owns a full set of per-wafer per-port links, at
	// the port bandwidth split across the two dimensions.
	for d := 0; d < 2; d++ {
		for w := 0; w < 8; w++ {
			if len(s.fwd[d][w]) != 4 || len(s.rev[d][w]) != 4 {
				t.Fatalf("dim %d wafer %d: %d fwd / %d rev links", d, w, len(s.fwd[d][w]), len(s.rev[d][w]))
			}
		}
	}
	l := s.Network().Link(s.fwd[1][0][0])
	if l.Bandwidth != cfg.PortBW/2 {
		t.Fatalf("per-dim link bandwidth = %g, want %g", l.Bandwidth, cfg.PortBW/2)
	}
}

func TestHierarchicalAllReduceCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Wafers = 8
	cfg.Dims = []int{4, 2}
	cfg.FillWorkers = 4
	s := New(cfg)
	defer s.Close()
	sched := s.GlobalAllReduce(1e9)
	// RS down dim 0, AR on dim 1, AG back up dim 0 → 3 inter phases
	// between the intra-wafer steps.
	if len(sched.Phases) != 5 {
		t.Fatalf("phases = %d, want 5", len(sched.Phases))
	}
	d := s.Run(sched)
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("hierarchical all-reduce time = %g", d)
	}
	// The naive leader exchange still loses, and by more than on the
	// flat ring: it repeats the full payload in every dimension.
	sN := New(cfg)
	defer sN.Close()
	naive := sN.Run(sN.NaiveAllReduce(1e9))
	if naive <= d {
		t.Fatalf("naive (%g) not slower than hierarchical (%g)", naive, d)
	}
}

func TestFlatDimsMatchesImplicit(t *testing.T) {
	// Dims=[W] must be byte-identical to the original implicit flat
	// ring: same link layout, same schedule, same simulated time.
	cfg := DefaultConfig()
	implicit := New(cfg)
	tImp := implicit.Run(implicit.GlobalAllReduce(3e9))
	cfg.Dims = []int{cfg.Wafers}
	explicit := New(cfg)
	tExp := explicit.Run(explicit.GlobalAllReduce(3e9))
	if tImp != tExp {
		t.Fatalf("explicit flat dims time %g != implicit %g", tExp, tImp)
	}
}

func TestFasterInterconnectHelps(t *testing.T) {
	cfg := DefaultConfig()
	slow := New(cfg)
	tSlow := slow.Run(slow.GlobalAllReduce(4e9))
	cfg.PortBW *= 4
	fast := New(cfg)
	tFast := fast.Run(fast.GlobalAllReduce(4e9))
	if tFast >= tSlow {
		t.Fatalf("4x inter-wafer BW did not help: %g vs %g", tFast, tSlow)
	}
}
