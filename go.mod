module github.com/wafernet/fred

go 1.22
