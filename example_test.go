package fred_test

import (
	"fmt"

	fred "github.com/wafernet/fred"
)

// Route two concurrent all-reduce collectives through a FRED switch
// and verify the data plane computes the right reductions — the
// Figure 7(h) scenario of the paper.
func ExampleSwitch_Route() {
	sw := fred.NewSwitch(2, 8)
	plan, err := sw.Route([]fred.Flow{
		fred.AllReduce([]int{0, 1, 2}),
		fred.AllReduce([]int{3, 4, 5}),
	})
	if err != nil {
		panic(err)
	}
	out, err := plan.EvaluateSum(map[int]float64{0: 1, 1: 2, 2: 4, 3: 10, 4: 20, 5: 40})
	if err != nil {
		panic(err)
	}
	fmt.Println(out[0], out[1], out[2])
	fmt.Println(out[3], out[4], out[5])
	// Output:
	// 7 7 7
	// 70 70 70
}

// A routing conflict (Figure 7(j)): three mutually conflicting flows
// cannot be 2-colored, but m = 3 routes them.
func ExampleConflictError() {
	flows := []fred.Flow{
		fred.AllReduce([]int{1, 2}),
		fred.AllReduce([]int{3, 4}),
		fred.AllReduce([]int{0, 5}),
	}
	if _, err := fred.NewSwitch(2, 8).Route(flows); err != nil {
		fmt.Println("m=2:", err)
	}
	if _, err := fred.NewSwitch(3, 8).Route(flows); err == nil {
		fmt.Println("m=3: routed")
	}
	// Output:
	// m=2: fred: routing conflict at level 0: flows [0 1 2] cannot be 2-colored
	// m=3: routed
}

// Time a wafer-wide collective on the baseline mesh and on Fred-D.
func ExamplePlatform_RunCollective() {
	group := make([]int, 20)
	for i := range group {
		group[i] = i
	}
	base := fred.NewBaselineMesh()
	tBase := base.RunCollective(base.Comm().AllReduce(group, 1.5e12))
	fd := fred.NewFred(fred.SystemFredD)
	tFred := fd.RunCollective(fd.Comm().AllReduce(group, 1.5e12))
	fmt.Printf("mesh %.2fs, Fred-D %.2fs\n", tBase, tFred)
	// Output:
	// mesh 1.90s, Fred-D 0.50s
}

// Simulate one Transformer-17B training iteration under the paper's
// Table 6 strategy.
func ExampleSimulateTraining() {
	m := fred.Transformer17B()
	r, err := fred.SimulateTraining(fred.NewFred(fred.SystemFredD), m,
		fred.Strategy{MP: 3, DP: 3, PP: 2}, 16)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Total > 0 && r.Breakdown.Compute > 0)
	// Output:
	// true
}
