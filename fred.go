// Package fred is a from-scratch reproduction of "FRED: A Wafer-scale
// Fabric for 3D Parallel DNN Training" (ISCA 2025): the FRED switch
// micro-architecture and its conflict-free collective routing, the
// wafer-scale fabrics it is evaluated against, a flow-level network
// simulator, collective-communication algorithms, and an
// ASTRA-SIM-style 3D-parallel training simulator.
//
// This package is the public facade. It exposes:
//
//   - switches: NewSwitch builds a Fred_m(P) interconnect of R/D/RD
//     µswitches; Switch.Route routes concurrent collective flows via
//     conflict-graph coloring and verifies them on the data plane.
//   - platforms: NewBaselineMesh and NewFred build the Table 5
//     wafer-scale systems on a fresh discrete-event simulator.
//   - collectives: Platform.Comm compiles all-reduce/reduce-scatter/
//     all-gather/all-to-all/multicast schedules for a platform and
//     runs them on the flow simulator.
//   - training: SimulateTraining executes one training iteration of a
//     workload (ResNet152, Transformer17B, GPT3, Transformer1T) under
//     a Strategy and reports the exposed-communication breakdown.
//   - experiments: the Figure*/Table* helpers regenerate the paper's
//     evaluation.
package fred

import (
	"io"

	"github.com/wafernet/fred/internal/collective"
	"github.com/wafernet/fred/internal/experiments"
	"github.com/wafernet/fred/internal/fred"
	"github.com/wafernet/fred/internal/multiwafer"
	"github.com/wafernet/fred/internal/netsim"
	"github.com/wafernet/fred/internal/parallelism"
	"github.com/wafernet/fred/internal/placement"
	"github.com/wafernet/fred/internal/report"
	"github.com/wafernet/fred/internal/sim"
	"github.com/wafernet/fred/internal/topology"
	"github.com/wafernet/fred/internal/training"
	"github.com/wafernet/fred/internal/workload"
)

// ---- FRED switch micro-architecture ----

// Switch is a FRED switch: a Fred_m(P) interconnect of µswitches with
// reduction/distribution support (Section 4 of the paper).
type Switch struct {
	ic *fred.Interconnect
}

// NewSwitch builds a Fred_m(P) switch. m ≥ 2 is the middle-stage count
// (m = 2 is rearrangeably nonblocking for unicast; the paper deploys
// m = 3); p ≥ 2 is the port count.
func NewSwitch(m, p int) *Switch { return &Switch{ic: fred.NewInterconnect(m, p)} }

// Ports returns the switch's external port count.
func (s *Switch) Ports() int { return s.ic.Ports() }

// MiddleStages returns m.
func (s *Switch) MiddleStages() int { return s.ic.M() }

// MicroSwitches returns the number of µswitch/mux/demux elements.
func (s *Switch) MicroSwitches() int { return s.ic.NumElements() }

// Flow is a FRED communication flow: reduce the data entering on IPs,
// broadcast the result to OPs (Section 5.1).
type Flow = fred.Flow

// Collective flow constructors (Table 2).
var (
	Unicast   = fred.Unicast
	Multicast = fred.Multicast
	Reduce    = fred.Reduce
	AllReduce = fred.AllReduce
)

// Compound collective decompositions (Table 2): serial phases of flows.
var (
	ReduceScatterPhases = fred.ReduceScatter
	AllGatherPhases     = fred.AllGather
	ScatterPhases       = fred.Scatter
	GatherPhases        = fred.Gather
	AllToAllPhases      = fred.AllToAll
)

// RoutingPlan is a conflict-free configuration of the switch for a set
// of concurrent flows.
type RoutingPlan = fred.Plan

// ConflictError reports an uncolorable conflict graph (Section 5.3).
type ConflictError = fred.ConflictError

// Route routes concurrent flows through the switch using the recursive
// conflict-graph-coloring protocol of Section 5.2.
func (s *Switch) Route(flows []Flow) (*RoutingPlan, error) { return s.ic.Route(flows) }

// MustRoute is Route for known-routable flow sets; it panics on error.
func (s *Switch) MustRoute(flows []Flow) *RoutingPlan { return s.ic.MustRoute(flows) }

// WriteDOT renders the switch as a Graphviz digraph; a non-nil plan
// highlights active R/D/RD features and colors routed flows, like
// Figure 7(h).
func (s *Switch) WriteDOT(w io.Writer, plan *RoutingPlan) error { return s.ic.WriteDOT(w, plan) }

// ---- Wafer-scale platforms ----

// Platform is a wafer-scale system instance: a topology embedded in a
// fresh flow-level network with its own event scheduler.
type Platform struct {
	wafer topology.Wafer
}

// SystemName names one of the Table 5 configurations.
type SystemName = experiments.System

// The Table 5 configurations.
const (
	SystemBaseline = experiments.Baseline
	SystemFredA    = experiments.FredA
	SystemFredB    = experiments.FredB
	SystemFredC    = experiments.FredC
	SystemFredD    = experiments.FredD
)

// NewPlatform builds a fresh instance of a Table 5 system.
func NewPlatform(name SystemName) *Platform {
	return &Platform{wafer: experiments.Build(name)}
}

// NewBaselineMesh builds the baseline 5×4 wafer-scale mesh.
func NewBaselineMesh() *Platform { return NewPlatform(SystemBaseline) }

// NewFred builds a FRED platform variant ("Fred-A" … "Fred-D").
func NewFred(name SystemName) *Platform { return NewPlatform(name) }

// NewMeshPlatform builds a custom mesh wafer.
func NewMeshPlatform(cfg topology.MeshConfig) *Platform {
	return &Platform{wafer: topology.NewMesh(netsim.New(sim.NewScheduler()), cfg)}
}

// NewFredPlatform builds a custom FRED fabric.
func NewFredPlatform(cfg topology.FredConfig) *Platform {
	return &Platform{wafer: topology.NewFredFabric(netsim.New(sim.NewScheduler()), cfg)}
}

// Wafer exposes the underlying topology.
func (p *Platform) Wafer() topology.Wafer { return p.wafer }

// NPUs returns the NPU count.
func (p *Platform) NPUs() int { return p.wafer.NPUCount() }

// BisectionBW returns the one-direction bisection bandwidth.
func (p *Platform) BisectionBW() float64 { return p.wafer.BisectionBW() }

// Comm returns a collective compiler for the platform.
func (p *Platform) Comm() *collective.Comm { return collective.NewComm(p.wafer) }

// CollectiveSchedule is a compiled collective: phases of concurrent
// transfers executable on a platform.
type CollectiveSchedule = collective.Schedule

// RunCollective compiles and executes a schedule on the platform's
// otherwise-idle network and returns its duration in seconds.
func (p *Platform) RunCollective(s collective.Schedule) float64 {
	return collective.RunToCompletion(p.wafer.Network(), s)
}

// RunConcurrent executes schedules concurrently and returns their
// durations.
func (p *Platform) RunConcurrent(ss []CollectiveSchedule) []float64 {
	return collective.RunConcurrently(p.wafer.Network(), ss)
}

// ---- Parallelism, placement, workloads, training ----

// Strategy is a 3D parallelization strategy MP(a)-DP(b)-PP(c).
type Strategy = parallelism.Strategy

// Worker identifies a training worker inside a strategy.
type Worker = parallelism.Worker

// Placement maps worker ranks to physical NPUs.
type Placement = placement.Placement

// ConsecutivePlacement is FRED's device-placement policy (Section 5.3).
func ConsecutivePlacement(s Strategy) Placement { return placement.Consecutive(s) }

// Model is a DNN training workload.
type Model = workload.Model

// The four Table 6 workloads.
var (
	ResNet152      = workload.ResNet152
	Transformer17B = workload.Transformer17B
	GPT3           = workload.GPT3
	Transformer1T  = workload.Transformer1T
	Workloads      = workload.Models
)

// TrainingConfig configures one training-iteration simulation.
type TrainingConfig = training.Config

// TrainingReport is the simulated iteration's outcome.
type TrainingReport = training.Report

// SimulateTraining runs one training iteration of the model under the
// strategy on the platform and reports the end-to-end time decomposed
// into compute and exposed communication.
func SimulateTraining(p *Platform, m *Model, s Strategy, samplesPerReplica int) (*TrainingReport, error) {
	return training.Simulate(training.Config{
		Wafer:               p.wafer,
		Model:               m,
		Strategy:            s,
		MinibatchPerReplica: samplesPerReplica,
	})
}

// ---- Experiments ----

// Table is an aligned-text result table.
type Table = report.Table

// MultiWaferConfig sizes a multi-wafer system (Section 8.3's scaling
// discussion).
type MultiWaferConfig = multiwafer.Config

// MultiWaferSystem is a set of FRED wafers joined by inter-wafer links.
type MultiWaferSystem = multiwafer.System

// MultiWaferConfigError is the typed validation error NewMultiWaferErr
// returns (and NewMultiWafer panics with), naming the offending
// Config field.
type MultiWaferConfigError = multiwafer.ConfigError

// NewMultiWafer builds a multi-wafer system; DefaultMultiWaferConfig
// gives 4 Fred-D wafers with 18 × 128 GB/s boundary ports each.
// NewMultiWaferErr is the error-returning form. Config.Dims arranges
// the wafers in a hierarchical scale-out grid (e.g. {8, 8} for 64
// wafers in an 8×8 torus of boundary-port rings).
var (
	NewMultiWafer           = multiwafer.New
	NewMultiWaferErr        = multiwafer.NewErr
	DefaultMultiWaferConfig = multiwafer.DefaultConfig
)

// ExperimentSession owns the observability hooks and worker pool of an
// experiment run: drivers called on a session fan their independent
// figure/table cells across the pool (SetParallel; default GOMAXPROCS)
// and merge rows and tables back in deterministic paper order, so the
// output is byte-identical at every pool size. The package-level
// driver functions below are conveniences over a fresh default
// session.
type ExperimentSession = experiments.Session

// NewExperimentSession returns a session with observability off and
// the worker pool sized to GOMAXPROCS.
var NewExperimentSession = experiments.NewSession

// Experiment drivers regenerating the paper's evaluation artifacts on
// a fresh default session each call.
var (
	Figure2        = experiments.Figure2
	Figure9        = experiments.Figure9
	Figure10       = experiments.Figure10
	Figure11a      = experiments.Figure11a
	Figure11b      = experiments.Figure11b
	MeshIOStudy    = experiments.MeshIOStudy
	PlacementStudy = experiments.PlacementStudy
	HWTables       = experiments.HWTables

	// Ablations and extensions.
	MiddleStageAblation   = experiments.MiddleStageAblation
	RingDirectionAblation = experiments.RingDirectionAblation
	GradBucketAblation    = experiments.GradBucketAblation
	BisectionSweep        = experiments.BisectionSweep
	MultiWaferStudy       = experiments.MultiWaferStudy
	NonAlignedStudy       = experiments.NonAlignedStudy
	EPStudy               = experiments.EPStudy
)
