// Weightstream: the weight-streaming execution model (Section 3.1.2).
// The baseline mesh cannot stream from all I/O controllers at line
// rate — broadcast trees overlap (2N−1)-fold on hotspot links
// (Figure 4) — while FRED's fat tree sustains full rate. This example
// shows the hotspot law and its end-to-end effect on GPT-3 and
// Transformer-1T training.
package main

import (
	"fmt"
	"log"

	fred "github.com/wafernet/fred"
)

func main() {
	// 1. The hotspot law, analytic and simulated.
	_, tbl := fred.MeshIOStudy()
	fmt.Println(tbl)

	// 2. End-to-end weight-streaming workloads.
	for _, model := range []*fred.Model{fred.GPT3(), fred.Transformer1T()} {
		strategy := fred.Strategy{MP: model.DefaultMP, DP: model.DefaultDP, PP: model.DefaultPP}
		fmt.Printf("%s, strategy %v:\n", model, strategy)
		var base float64
		for _, sys := range []fred.SystemName{fred.SystemBaseline, fred.SystemFredD} {
			p := fred.NewPlatform(sys)
			r, err := fred.SimulateTraining(p, model, strategy, 16)
			if err != nil {
				log.Fatal(err)
			}
			if sys == fred.SystemBaseline {
				base = r.Total
			}
			fmt.Printf("  %-9s total %8.3fs  weight-stream exposed %8.3fs  (%.2fx)\n",
				sys, r.Total, r.Breakdown.Stream, base/r.Total)
		}
	}
	fmt.Println("paper (Figure 10): GPT-3 1.34x, Transformer-1T 1.4x; shape: FRED removes the I/O hotspot")
}
