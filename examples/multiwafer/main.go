// Multiwafer: scaling beyond a single wafer (Section 8.3). A model too
// large for one wafer trains across several; the global gradient
// all-reduce decomposes into an intra-wafer reduce-scatter onto the
// boundary NPUs, parallel inter-wafer rings, and an intra-wafer
// all-gather. This example compares that hierarchical collective
// against the naive single-leader exchange across 2-8 wafers.
package main

import (
	"fmt"

	fred "github.com/wafernet/fred"
)

func main() {
	const gradBytes = 10e9
	fmt.Printf("global 10 GB all-reduce across FRED wafers (18 x 128 GB/s boundary ports)\n\n")
	fmt.Printf("%-8s %14s %14s %8s\n", "wafers", "hierarchical", "naive leader", "gain")
	for _, wafers := range []int{2, 4, 8} {
		cfg := fred.DefaultMultiWaferConfig()
		cfg.Wafers = wafers

		hierSys := fred.NewMultiWafer(cfg)
		hier := hierSys.Run(hierSys.GlobalAllReduce(gradBytes))

		naiveSys := fred.NewMultiWafer(cfg)
		naive := naiveSys.Run(naiveSys.NaiveAllReduce(gradBytes))

		fmt.Printf("%-8d %12.2fms %12.2fms %7.2fx\n", wafers, hier*1e3, naive*1e3, naive/hier)
	}
	fmt.Println("\nthe hierarchical form keeps every boundary NPU's inter-wafer port busy;")
	fmt.Println("the naive design serializes the full gradient through one port per wafer")
}
