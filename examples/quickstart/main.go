// Quickstart: build a FRED switch, route two concurrent all-reduces
// through its µswitches (the Figure 7(h) example), push numbers
// through the configured data plane, and then time the same collective
// on a full wafer-scale platform.
package main

import (
	"fmt"
	"log"

	fred "github.com/wafernet/fred"
)

func main() {
	// 1. A Fred_2(8) switch: 8 ports, 2 middle-stage subnetworks.
	sw := fred.NewSwitch(2, 8)
	fmt.Printf("built Fred_2(8) from %d µswitches\n", sw.MicroSwitches())

	// 2. Route two concurrent all-reduce flows (green and orange in
	// Figure 7(h) of the paper).
	plan, err := sw.Route([]fred.Flow{
		fred.AllReduce([]int{0, 1, 2}),
		fred.AllReduce([]int{3, 4, 5}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed with %d in-switch reductions and %d distributions\n",
		plan.ActiveReductions(), plan.ActiveDistributions())

	// 3. Evaluate the data plane: each port contributes a value; every
	// member of a flow must receive its group's sum.
	inputs := map[int]float64{0: 1, 1: 2, 2: 4, 3: 10, 4: 20, 5: 40}
	outputs, err := plan.EvaluateSum(inputs)
	if err != nil {
		log.Fatal(err)
	}
	for _, port := range []int{0, 1, 2, 3, 4, 5} {
		fmt.Printf("  port %d receives %g\n", port, outputs[port])
	}

	// 4. The same collective at wafer scale: a 3 GB all-reduce across
	// all 20 NPUs on the baseline mesh and on Fred-D.
	group := make([]int, 20)
	for i := range group {
		group[i] = i
	}
	const bytes = 3e9
	base := fred.NewBaselineMesh()
	tBase := base.RunCollective(base.Comm().AllReduce(group, bytes))
	fd := fred.NewFred(fred.SystemFredD)
	tFred := fd.RunCollective(fd.Comm().AllReduce(group, bytes))
	fmt.Printf("\nwafer-wide 3 GB all-reduce: mesh %.3g ms, Fred-D %.3g ms (%.2fx)\n",
		tBase*1e3, tFred*1e3, tBase/tFred)
}
