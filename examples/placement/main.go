// Placement: the Figure 5 device-placement study. On a 2D mesh, an
// MP(2)-DP(4)-PP(2) strategy cannot be placed without congesting at
// least one parallelism dimension; FRED with its consecutive placement
// serves all three. This example measures each dimension's concurrent
// collective time under three placements.
package main

import (
	"fmt"

	fred "github.com/wafernet/fred"
)

func main() {
	_, tbl := fred.PlacementStudy()
	fmt.Println(tbl)

	// The takeaway, computed explicitly: on the mesh, the best
	// placement for MP is the worst for DP and vice versa.
	rows, _ := fred.PlacementStudy()
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Placement+"/"+r.Dim.String()] = r.Time
	}
	fmt.Printf("mesh MP-first: MP %.3gms vs DP %.3gms\n",
		byKey["mesh MP-first (Fig 5a)/MP"]*1e3, byKey["mesh MP-first (Fig 5a)/DP"]*1e3)
	fmt.Printf("mesh DP-first: MP %.3gms vs DP %.3gms\n",
		byKey["mesh DP-first (Fig 5b)/MP"]*1e3, byKey["mesh DP-first (Fig 5b)/DP"]*1e3)
	fmt.Printf("Fred-D:        MP %.3gms vs DP %.3gms (no trade-off)\n",
		byKey["Fred-D consecutive/MP"]*1e3, byKey["Fred-D consecutive/DP"]*1e3)
}
