// Training: simulate one 3D-parallel training iteration of
// Transformer-17B (MP(3)-DP(3)-PP(2), the paper's Table 6 strategy) on
// every Table 5 fabric and print the exposed-communication breakdown —
// a single-workload slice of Figure 10.
package main

import (
	"fmt"
	"log"

	fred "github.com/wafernet/fred"
)

func main() {
	model := fred.Transformer17B()
	strategy := fred.Strategy{MP: model.DefaultMP, DP: model.DefaultDP, PP: model.DefaultPP}
	fmt.Printf("workload: %s, strategy %v, minibatch %d\n\n", model, strategy, strategy.DP*16)

	systems := []fred.SystemName{
		fred.SystemBaseline, fred.SystemFredA, fred.SystemFredB, fred.SystemFredC, fred.SystemFredD,
	}
	var base float64
	fmt.Printf("%-9s %10s %10s %10s %10s %10s %8s\n",
		"system", "total", "compute", "MP", "DP", "PP", "speedup")
	for _, sys := range systems {
		p := fred.NewPlatform(sys)
		r, err := fred.SimulateTraining(p, model, strategy, 16)
		if err != nil {
			log.Fatal(err)
		}
		if sys == fred.SystemBaseline {
			base = r.Total
		}
		b := r.Breakdown
		fmt.Printf("%-9s %9.2fms %9.2fms %9.2fms %9.2fms %9.2fms %7.2fx\n",
			sys, r.Total*1e3, b.Compute*1e3, b.MP*1e3, b.DP*1e3, b.PP*1e3, base/r.Total)
	}
	fmt.Println("\npaper (Figure 10): Fred-C 1.75x, Fred-D 1.87x, Fred-A/B in between")
}
